// Shared loop-body access model and Presburger conflict tester.
//
// This is the machinery the PlanAuditor (plan_audit.cpp) uses to re-derive
// cross-iteration independence from first principles, factored out so other
// clients — notably the Program Dependence Graph builder (src/pdg/) — can
// reuse the exact same conflict systems instead of growing a third, subtly
// different dependence model. The contract is unchanged from the original
// auditor (see plan_audit.h for the full soundness discussion):
//
//  * scan() walks the audited loop body, virtually inlining calls, and
//    collects every array access as a linearized affine offset (plus a
//    per-dimension subscript vector) under an affine execution context.
//  * conflictInOrder()/conflictExists() build the conflict system
//        bounds(i1) ∧ bounds(i2) ∧ i1 < i2 ∧ ctx_a(i1) ∧ ctx_b(i2)
//             ∧ offset_a(i1) = offset_b(i2)
//    and test rational feasibility; infeasibility proves independence.
//  * geometry() additionally projects the conflict system onto the
//    iteration distance d = i2 - i1, recovering a constant dependence
//    distance when the system forces one (the distance/direction
//    annotation on loop-carried PDG edges).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "lang/ast.h"
#include "presburger/system.h"
#include "symbolic/vartable.h"

namespace padfa {

/// One array access collected from the (virtually inlined) loop body.
struct ConflictAccess {
  const VarDecl* root = nullptr;
  /// The decl the reference goes through (== root except in callees,
  /// where it is the formal). Two accesses through the SAME view can be
  /// compared per-dimension even when strides are symbolic.
  const VarDecl* view = nullptr;
  bool write = false;
  bool exact = true;       // flat offset + context modeled exactly
  bool exact_subs = true;  // subscript vector + context modeled exactly
  SourceLoc loc;
  /// Innermost statement of the *audited* procedure whose execution
  /// performs this access (accesses inside inlined callees anchor to the
  /// call statement). Lets graph clients attribute the access to a node.
  const Stmt* anchor = nullptr;
  /// Linearized buffer offset (row-major over the view's extents);
  /// nullopt = coarse (conflicts possible anywhere in the buffer).
  std::optional<pb::LinExpr> flat;
  /// Per-dimension affine subscripts (nullopt entries = non-affine).
  std::vector<std::optional<pb::LinExpr>> subs;
  pb::System ctx;
};

/// Scans one loop and answers cross-iteration conflict queries over the
/// collected accesses. One instance per audited loop; not thread-safe.
class LoopConflictScanner {
 public:
  static constexpr int kMaxInlineDepth = 12;
  static constexpr size_t kMaxAccesses = 256;

  LoopConflictScanner(const Program& program, const ForStmt* loop,
                      const ProcDecl* proc);

  /// Collect accesses (idempotent; cheap to call again).
  void scan();

  const std::vector<ConflictAccess>& accesses() const { return accesses_; }
  /// True when the access cap was hit; the scan is partial.
  bool overflow() const { return overflow_; }
  /// False when the audited loop's own bounds/step are not exactly affine.
  bool loopExact() const { return loop_exact_; }

  /// Scalars assigned (transitively) in the loop body.
  const std::set<const VarDecl*>& bodyAssigned() const {
    return body_assigned_;
  }
  /// VarDecls declared (storage re-created per entry) inside the body.
  const std::set<const VarDecl*>& bodyDeclared() const {
    return body_declared_;
  }

  /// The variable table conflict systems are expressed over; clients
  /// building extra constraints (e.g. a run-time test's affine upper
  /// bound) must use this table.
  VarTable& varTable() { return vt_; }

  /// How a pair's "same element" equation is expressed.
  enum class PairEq {
    Flat,  // linearized offsets equal (handles reshape across views)
    Subs,  // same view, per-dimension subscripts equal (symbolic strides)
    None,  // coarse: any two elements may coincide
  };
  static PairEq pairEq(const ConflictAccess& a, const ConflictAccess& b);
  /// Does the conflict system for (a, b) under `eq` model both accesses
  /// exactly (so feasibility is meaningful, not just conservative)?
  static bool pairExactly(const ConflictAccess& a, const ConflictAccess& b,
                          PairEq eq);

  /// Is a cross-iteration conflict between `a` and `b` satisfiable in
  /// either iteration order, optionally under extra constraints?
  bool conflictExists(const ConflictAccess& a, const ConflictAccess& b,
                      PairEq eq, const pb::System* extra);

  /// Directed variant: `a` executes in a strictly earlier iteration of
  /// the audited loop than `b`.
  bool conflictInOrder(const ConflictAccess& a, const ConflictAccess& b,
                       PairEq eq, const pb::System* extra);

  /// Geometry of the directed carried dependence a -> b (a earlier).
  struct DepGeometry {
    bool feasible = false;
    /// Constant iteration distance when the conflict system forces one
    /// (projection onto d = i2 - i1 yields an equality); nullopt = the
    /// distance varies or could not be pinned ("+" direction only).
    std::optional<int64_t> distance;
  };
  DepGeometry geometry(const ConflictAccess& a, const ConflictAccess& b,
                       PairEq eq);

 private:
  struct Copy {
    pb::System ctx;
    std::optional<pb::LinExpr> flat;
    std::vector<std::optional<pb::LinExpr>> subs;
    pb::VarId idx = pb::kInvalidVar;  // this copy's audited index
  };
  Copy instantiate(const ConflictAccess& a, int which);
  bool orderFeasible(const Copy& lo, const Copy& hi, PairEq eq,
                     const pb::System* extra, pb::System* out = nullptr);

  const Program& program_;
  const ForStmt* loop_;
  const ProcDecl* proc_;
  VarTable vt_;
  std::vector<ConflictAccess> accesses_;
  std::set<const VarDecl*> body_assigned_;
  std::set<const VarDecl*> body_declared_;
  std::set<pb::VarId> instance_;
  pb::VarId audited_idx_ = pb::kInvalidVar;
  bool loop_exact_ = true;
  bool overflow_ = false;
  bool scanned_ = false;

  friend class LoopBodyWalk;
};

/// Scalars whose value changes inside `block` (assignment targets plus
/// declarations with initializers, transitively).
void collectAssignedScalars(const BlockStmt& block,
                            std::set<const VarDecl*>& out);

/// Reads of scalars/arrays anywhere in `block` (cheap over-approximation
/// used by the auditor's scalar-coverage check).
void collectBodyReads(const BlockStmt& block, std::set<const VarDecl*>& out);

}  // namespace padfa
