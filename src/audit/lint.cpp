#include "audit/lint.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "ipa/callgraph.h"
#include "pdg/cfg.h"
#include "pdg/reaching.h"
#include "predicate/pred.h"
#include "presburger/set.h"
#include "symbolic/affine.h"
#include "symbolic/vartable.h"
#include "vra/vra.h"

namespace padfa {

namespace {

bool wanted(const LintOptions& opt, const char* id) {
  if (opt.only.empty()) return true;
  return std::find(opt.only.begin(), opt.only.end(), id) != opt.only.end();
}

// ------------------------------------------------------------------------
// Reference counting: reads/writes per VarDecl across the whole program.
// Drives padfa-unused and padfa-dead-store.

struct RefCounts {
  std::map<const VarDecl*, int> reads;
  std::map<const VarDecl*, int> writes;
};

void countExprReads(const Expr& e, RefCounts& rc) {
  std::vector<const VarDecl*> vs;
  collectVars(e, vs);
  for (const VarDecl* d : vs) rc.reads[d]++;
}

void countStmt(const Stmt& s, RefCounts& rc);

void countBlock(const BlockStmt& b, RefCounts& rc) {
  for (const auto& d : b.decls) {
    for (const auto& dim : d->dims) countExprReads(*dim, rc);
    if (d->init) countExprReads(*d->init, rc);
  }
  for (const auto& st : b.stmts) countStmt(*st, rc);
}

void countStmt(const Stmt& s, RefCounts& rc) {
  switch (s.kind) {
    case StmtKind::Assign: {
      const auto& as = static_cast<const AssignStmt&>(s);
      countExprReads(*as.value, rc);
      if (as.target->kind == ExprKind::ArrayRef) {
        const auto& ref = static_cast<const ArrayRefExpr&>(*as.target);
        for (const auto& idx : ref.indices) countExprReads(*idx, rc);
        rc.writes[ref.decl]++;
      } else {
        rc.writes[static_cast<const VarRefExpr&>(*as.target).decl]++;
      }
      break;
    }
    case StmtKind::If: {
      const auto& i = static_cast<const IfStmt&>(s);
      countExprReads(*i.cond, rc);
      countBlock(*i.then_block, rc);
      if (i.else_block) countBlock(*i.else_block, rc);
      break;
    }
    case StmtKind::For: {
      const auto& f = static_cast<const ForStmt&>(s);
      countExprReads(*f.lower, rc);
      countExprReads(*f.upper, rc);
      if (f.step) countExprReads(*f.step, rc);
      countBlock(*f.body, rc);
      break;
    }
    case StmtKind::Call: {
      const auto& c = static_cast<const CallStmt&>(s);
      for (const auto& a : c.args) {
        countExprReads(*a, rc);
        // A whole-array argument may also be written by the callee.
        if (a->kind == ExprKind::VarRef) {
          const auto& vr = static_cast<const VarRefExpr&>(*a);
          if (vr.decl && vr.decl->isArray()) rc.writes[vr.decl]++;
        }
      }
      break;
    }
    case StmtKind::Block:
      countBlock(static_cast<const BlockStmt&>(s), rc);
      break;
    case StmtKind::Return:
      break;
  }
}

void checkUnusedAndDeadStores(const Program& program, DiagEngine& diags,
                              const LintOptions& opt) {
  RefCounts rc;
  for (const auto& proc : program.procs) {
    // Array-parameter extents ("real x[n]") read the scalars they name.
    for (const auto& p : proc->params)
      for (const auto& dim : p->dims) countExprReads(*dim, rc);
    countBlock(*proc->body, rc);
  }
  for (const auto& proc : program.procs) {
    for (const VarDecl* d : proc->all_vars) {
      if (d->is_loop_index) continue;  // driven by its loop
      int reads = rc.reads.count(d) ? rc.reads.at(d) : 0;
      int writes = rc.writes.count(d) ? rc.writes.at(d) : 0;
      std::string name(program.interner.str(d->name));
      if (reads == 0 && writes == 0) {
        if (wanted(opt, "padfa-unused"))
          diags.warning(d->loc,
                        std::string(d->is_param ? "parameter '" : "variable '") +
                            name + "' is never used",
                        "padfa-unused");
        continue;
      }
      // Writes to array parameters escape to the caller; a scalar
      // parameter is by-value, so a never-read one is a dead store.
      if (d->is_param && d->isArray()) continue;
      if (reads == 0 && writes > 0 && wanted(opt, "padfa-dead-store")) {
        diags.warning(d->loc,
                      (d->isArray() ? "array '" : "variable '") + name +
                          "' is written but its value is never read",
                      "padfa-dead-store");
      }
    }
  }

  // Statement-level sharpening via liveness (pdg/reaching.h): a scalar
  // store whose target is dead-out of its CFG node is overwritten (or
  // dropped at procedure exit) on EVERY path before any read — a
  // provable fact, so it satisfies the lint philosophy even when the
  // variable is read elsewhere. Variables with zero reads anywhere were
  // already reported at their declaration above; skipping them here
  // keeps one dead variable to one diagnostic.
  if (!wanted(opt, "padfa-dead-store")) return;
  for (const auto& proc : program.procs) {
    ProcCfg cfg = buildCfg(program, *proc);
    Liveness live(cfg);
    live.run();
    for (const CfgNode& n : cfg.nodes) {
      if (n.kind != CfgNodeKind::Assign) continue;
      const auto& as = static_cast<const AssignStmt&>(*n.stmt);
      if (as.target->kind != ExprKind::VarRef) continue;  // arrays are weak
      const VarDecl* d = static_cast<const VarRefExpr&>(*as.target).decl;
      if (!d || d->is_loop_index) continue;
      int reads = rc.reads.count(d) ? rc.reads.at(d) : 0;
      if (reads == 0) continue;  // decl-level diagnostic already covers it
      if (live.liveOut(n.id, d)) continue;
      diags.warning(n.loc,
                    "value stored to '" +
                        std::string(program.interner.str(d->name)) +
                        "' is never read (every path overwrites it or "
                        "reaches the procedure exit first)",
                    "padfa-dead-store");
    }
  }
}

// ------------------------------------------------------------------------
// Shadowing: a declaration whose name is already bound in an enclosing
// scope (param, outer block declaration, or enclosing loop index).

void walkShadow(const Program& program, const BlockStmt& block,
                std::vector<const VarDecl*>& scope, DiagEngine& diags) {
  size_t mark = scope.size();
  for (const auto& d : block.decls) {
    for (size_t i = 0; i < mark; ++i) {
      if (scope[i]->name == d->name) {
        std::string name(program.interner.str(d->name));
        std::string what = scope[i]->is_param       ? "parameter"
                           : scope[i]->is_loop_index ? "loop index"
                                                     : "variable";
        diags.warning(d->loc,
                      "declaration of '" + name + "' shadows " + what +
                          " declared at " + scope[i]->loc.str(),
                      "padfa-shadow");
        break;
      }
    }
    scope.push_back(d.get());
  }
  for (const auto& st : block.stmts) {
    switch (st->kind) {
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*st);
        walkShadow(program, *i.then_block, scope, diags);
        if (i.else_block) walkShadow(program, *i.else_block, scope, diags);
        break;
      }
      case StmtKind::For:
        // The index is declared inside the body block, so the body walk
        // reports it if it shadows an outer binding.
        walkShadow(program, *static_cast<const ForStmt&>(*st).body, scope,
                   diags);
        break;
      case StmtKind::Block:
        walkShadow(program, static_cast<const BlockStmt&>(*st), scope, diags);
        break;
      default:
        break;
    }
  }
  scope.resize(mark);
}

void checkShadowing(const Program& program, DiagEngine& diags) {
  for (const auto& proc : program.procs) {
    std::vector<const VarDecl*> scope;
    for (const auto& p : proc->params) scope.push_back(p.get());
    walkShadow(program, *proc->body, scope, diags);
  }
}

// ------------------------------------------------------------------------
// Loop trip-count checks. Bounds are resolved through the value-range
// analysis when it is available (so "for i = n to n" after "n = 5" is
// caught, not just literal bounds); with VRA disabled the checks fall
// back to constant folding and behave exactly as before.

void checkLoopTrips(const LoopTree& loops, DiagEngine& diags,
                    const LintOptions& opt,
                    const vra::RangeAnalysis* ranges) {
  for (const LoopNode* node : loops.allLoops()) {
    const ForStmt& loop = *node->loop;
    auto asRange = [&](const Expr& e) {
      if (ranges) return ranges->evalAt(&loop, e);
      auto c = tryConstInt(e);
      return c ? vra::Range::constant(*c) : vra::Range::top();
    };
    vra::Range lb = asRange(*loop.lower);
    vra::Range ub = asRange(*loop.upper);
    vra::Range st =
        loop.step ? asRange(*loop.step) : vra::Range::constant(1);
    if (lb.empty || ub.empty || st.empty) continue;  // unreachable loop
    bool asc = st.lo && *st.lo >= 1;
    bool desc = st.hi && *st.hi <= -1;
    if (!asc && !desc) continue;  // sign unknown (or possibly zero: a
                                  // runtime error, not a trip question)
    // diff = lb - ub; diff >= 1 everywhere proves an ascending loop never
    // runs, diff <= -1 a descending one.
    vra::Range diff = vra::sub(lb, ub);
    bool never = (asc && diff.lo && *diff.lo >= 1) ||
                 (desc && diff.hi && *diff.hi <= -1);
    auto bstr = [](const vra::Range& r) {
      auto c = r.asConstant();
      return c ? std::to_string(*c) : r.str();
    };
    if (never && wanted(opt, "padfa-loop-never-runs")) {
      diags.warning(loop.loc,
                    "loop never executes (bounds " + bstr(lb) + " to " +
                        bstr(ub) + ")",
                    "padfa-loop-never-runs");
    } else if (lb.isConstant() && lb == ub &&
               wanted(opt, "padfa-loop-single-trip")) {
      diags.warning(loop.loc,
                    "loop executes exactly once (bounds " + bstr(lb) +
                        " to " + bstr(ub) + ")",
                    "padfa-loop-single-trip");
    }
  }
}

// ------------------------------------------------------------------------
// Range-powered statement walk: padfa-div-by-zero (an integer divisor
// whose interval is exactly [0,0] — the division faults every time it
// executes) and padfa-dead-branch (a branch condition the intervals
// prove constant, leaving one arm unreachable). Both follow the lint
// philosophy: only provable facts fire. Without the value-range
// analysis, division by a literal zero is still caught; dead branches
// need ranges and stay quiet.

class RangeLintWalker {
 public:
  RangeLintWalker(const Program& program, DiagEngine& diags,
                  const LintOptions& opt, const vra::RangeAnalysis* ranges)
      : program_(program), diags_(diags), opt_(opt), ranges_(ranges) {}

  void run(const ProcDecl& proc) { walkBlock(*proc.body); }

 private:
  void checkDivisors(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::RealLit:
      case ExprKind::VarRef:
        return;
      case ExprKind::ArrayRef:
        for (const auto& idx : static_cast<const ArrayRefExpr&>(e).indices)
          checkDivisors(*idx);
        return;
      case ExprKind::Unary:
        checkDivisors(*static_cast<const UnaryExpr&>(e).operand);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        checkDivisors(*b.lhs);
        checkDivisors(*b.rhs);
        if ((b.op == BinOp::Div || b.op == BinOp::Rem) &&
            wanted(opt_, "padfa-div-by-zero")) {
          vra::Range r = ranges_ ? ranges_->evalAt(cur_, *b.rhs)
                                 : vra::Range::top();
          auto c = tryConstInt(*b.rhs);
          if (r.asConstant() == std::optional<int64_t>{0} ||
              c == std::optional<int64_t>{0}) {
            diags_.warning(b.loc,
                           std::string(b.op == BinOp::Div ? "division"
                                                          : "remainder") +
                               " by a value that is provably zero here",
                           "padfa-div-by-zero");
          }
        }
        return;
      }
      case ExprKind::Intrinsic:
        for (const auto& a : static_cast<const IntrinsicExpr&>(e).args)
          checkDivisors(*a);
        return;
    }
  }

  void walkBlock(const BlockStmt& block) {
    for (const auto& d : block.decls)
      if (d->init) {
        cur_ = &block;
        checkDivisors(*d->init);
      }
    for (const auto& st : block.stmts) walkStmt(*st);
  }

  void walkStmt(const Stmt& s) {
    cur_ = &s;
    switch (s.kind) {
      case StmtKind::Assign: {
        const auto& as = static_cast<const AssignStmt&>(s);
        checkDivisors(*as.value);
        if (as.target->kind == ExprKind::ArrayRef)
          for (const auto& idx :
               static_cast<const ArrayRefExpr&>(*as.target).indices)
            checkDivisors(*idx);
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        checkDivisors(*i.cond);
        if (ranges_ && wanted(opt_, "padfa-dead-branch")) {
          Pred p = Pred::fromCondition(*i.cond, program_.interner);
          vra::Proof proof = ranges_->provePred(&s, p);
          if (proof == vra::Proof::False) {
            diags_.warning(i.cond->loc,
                           "condition is provably false; the then-branch "
                           "never runs",
                           "padfa-dead-branch");
          } else if (proof == vra::Proof::True && i.else_block) {
            diags_.warning(i.cond->loc,
                           "condition is provably true; the else-branch "
                           "never runs",
                           "padfa-dead-branch");
          }
        }
        walkBlock(*i.then_block);
        if (i.else_block) walkBlock(*i.else_block);
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        checkDivisors(*f.lower);
        checkDivisors(*f.upper);
        if (f.step) checkDivisors(*f.step);
        walkBlock(*f.body);
        break;
      }
      case StmtKind::Call:
        for (const auto& a : static_cast<const CallStmt&>(s).args)
          checkDivisors(*a);
        break;
      case StmtKind::Block:
        walkBlock(static_cast<const BlockStmt&>(s));
        break;
      case StmtKind::Return:
        break;
    }
  }

  const Program& program_;
  DiagEngine& diags_;
  const LintOptions& opt_;
  const vra::RangeAnalysis* ranges_;
  const Stmt* cur_ = nullptr;
};

// ------------------------------------------------------------------------
// Affine-context walker: drives padfa-oob (subscript provably outside the
// declared extent whenever the access runs) and padfa-uninit-read (read
// of an array section no execution so far could have written).
//
// Soundness discipline: every pushed context constraint must hold at the
// moment the guarded statements execute. Scalars that are assigned more
// than once in the procedure (or assigned at all for parameters / loop
// indices) are "unstable": constraints mentioning them are never pushed,
// and subscripts/extents mentioning them are treated as non-affine.

class ContextWalker {
 public:
  ContextWalker(const Program& program, const ProcDecl& proc,
                DiagEngine& diags, const LintOptions& opt,
                const vra::RangeAnalysis* ranges)
      : program_(program), proc_(proc), diags_(diags), opt_(opt),
        ranges_(ranges), vt_(&program.interner) {
    computeUnstable();
    // Array parameters: the caller may have written anything.
    for (const auto& p : proc.params)
      if (p->isArray()) written_[p.get()] = wholeArray(*p);
  }

  void run() { walkBlock(*proc_.body, /*writes_only=*/false); }

 private:
  // ----------------------------------------------------------- helpers --

  void computeUnstable() {
    RefCounts rc;
    countBlock(*proc_.body, rc);
    for (const VarDecl* d : proc_.all_vars) {
      if (d->isArray()) continue;
      int writes = rc.writes.count(d) ? rc.writes.at(d) : 0;
      if (d->is_param || d->is_loop_index) {
        if (writes >= 1) unstable_.insert(d);
      } else if (writes >= 2) {
        unstable_.insert(d);
      }
    }
  }

  bool stableExpr(const pb::LinExpr& e) const {
    for (const auto& [v, c] : e.terms()) {
      const VarDecl* d = vt_.declOf(v);
      if (d && unstable_.count(d)) return false;
    }
    return true;
  }

  /// Affine form of an int expression, rejecting unstable scalars.
  std::optional<pb::LinExpr> affineStable(const Expr& e) {
    auto a = tryAffine(e, vt_);
    if (!a || !stableExpr(*a)) return std::nullopt;
    return a;
  }

  pb::System contextSystem() const {
    pb::System sys;
    for (const auto& s : ctx_) sys.conjoin(s);
    return sys;
  }

  /// 0 <= d_j <= extent_j - 1 for dims with stable affine extents.
  void addArrayBounds(pb::System& sys, const VarDecl& array) {
    for (size_t j = 0; j < array.rank() && j < VarTable::kMaxRank; ++j) {
      if (auto ext = affineStable(*array.dims[j])) {
        sys.addGE0(pb::LinExpr::var(vt_.dim(j)));
        pb::LinExpr ub = *ext;
        ub -= pb::LinExpr::var(vt_.dim(j));
        ub.setConstant(ub.constant() - 1);
        sys.addGE0(std::move(ub));
      }
    }
  }

  pb::Set wholeArray(const VarDecl& array) {
    pb::System sys;
    addArrayBounds(sys, array);
    return pb::Set(std::move(sys));
  }

  /// Scalars assigned anywhere inside `b` (transitively).
  void scalarWritesIn(const BlockStmt& b, std::set<const VarDecl*>& out) {
    for (const auto& st : b.stmts) {
      switch (st->kind) {
        case StmtKind::Assign: {
          const auto& as = static_cast<const AssignStmt&>(*st);
          if (as.target->kind == ExprKind::VarRef)
            out.insert(static_cast<const VarRefExpr&>(*as.target).decl);
          break;
        }
        case StmtKind::If: {
          const auto& i = static_cast<const IfStmt&>(*st);
          scalarWritesIn(*i.then_block, out);
          if (i.else_block) scalarWritesIn(*i.else_block, out);
          break;
        }
        case StmtKind::For:
          scalarWritesIn(*static_cast<const ForStmt&>(*st).body, out);
          break;
        case StmtKind::Block:
          scalarWritesIn(static_cast<const BlockStmt&>(*st), out);
          break;
        default:
          break;
      }
    }
  }

  /// Constraints of `sys` that stay valid across `region` (no mentioned
  /// scalar is unstable or written inside the region).
  pb::System filterForRegion(const pb::System& sys, const BlockStmt& region) {
    std::set<const VarDecl*> written;
    scalarWritesIn(region, written);
    pb::System out;
    for (const auto& c : sys.constraints()) {
      bool ok = stableExpr(c.expr);
      if (ok) {
        for (const auto& [v, coeff] : c.expr.terms()) {
          const VarDecl* d = vt_.declOf(v);
          if (d && written.count(d)) ok = false;
        }
      }
      if (ok) out.add(c);
    }
    return out;
  }

  // ------------------------------------------------------------ checks --

  /// Definite out-of-bounds: the access context is satisfiable, but
  /// conjoining the in-bounds constraints for some dimension is not — so
  /// the access traps every time it executes.
  void checkOob(const ArrayRefExpr& ref) {
    if (!wanted(opt_, "padfa-oob") || !ref.decl) return;
    pb::System ctx = contextSystem();
    if (!ctx.feasible()) return;  // unreachable access: nothing to report
    for (size_t j = 0; j < ref.indices.size() && j < VarTable::kMaxRank;
         ++j) {
      auto sub = affineStable(*ref.indices[j]);
      auto ext = affineStable(*ref.decl->dims[j]);
      if (!sub || !ext) continue;
      pb::System in_bounds = ctx;
      in_bounds.addGE0(*sub);  // sub >= 0
      pb::LinExpr upper = *ext;
      upper -= *sub;
      upper.setConstant(upper.constant() - 1);
      in_bounds.addGE0(std::move(upper));  // sub <= ext - 1
      if (!in_bounds.normalize() || !in_bounds.feasible()) {
        std::string name(program_.interner.str(ref.name));
        diags_.warning(ref.loc,
                       "subscript of '" + name + "' (dimension " +
                           std::to_string(j) +
                           ") is always out of bounds when this access "
                           "executes",
                       "padfa-oob");
        return;  // one report per access
      }
    }
    // Range sharpening: the affine path above refuses unstable scalars
    // entirely, but the flow-sensitive intervals ARE valid at this
    // statement — so a subscript whose whole interval lies outside the
    // extent is provably out of bounds even when it mentions multiply-
    // assigned scalars. Only definite facts fire: interval entirely
    // below 0, or subscript - extent >= 0 everywhere.
    if (!ranges_ || !cur_stmt_) return;
    for (size_t j = 0; j < ref.indices.size() && j < ref.decl->rank(); ++j) {
      vra::Range sr = ranges_->evalAt(cur_stmt_, *ref.indices[j]);
      if (sr.empty) return;  // unreachable access: nothing to report
      vra::Range er = ranges_->evalAt(cur_stmt_, *ref.decl->dims[j]);
      bool below = sr.hi && *sr.hi <= -1;
      vra::Range diff = vra::sub(sr, er);
      bool above = diff.lo && *diff.lo >= 0;
      if (below || above) {
        std::string name(program_.interner.str(ref.name));
        diags_.warning(ref.loc,
                       "subscript of '" + name + "' (dimension " +
                           std::to_string(j) + ") is always out of bounds "
                           "when this access executes (value range " +
                           sr.str() + ")",
                       "padfa-oob");
        return;
      }
    }
  }

  /// Section of one access under the current context, projected onto the
  /// dimension variables and stable parameters. `exactish` is cleared
  /// when a subscript was not affine (the section is the whole array).
  pb::Set accessSection(const ArrayRefExpr& ref, bool& all_affine) {
    pb::System sys;
    all_affine = true;
    for (size_t j = 0; j < ref.indices.size() && j < VarTable::kMaxRank;
         ++j) {
      if (auto a = affineStable(*ref.indices[j])) {
        pb::LinExpr eq = *a;
        eq -= pb::LinExpr::var(vt_.dim(j));
        sys.addEQ0(std::move(eq));
      } else {
        all_affine = false;
      }
    }
    addArrayBounds(sys, *ref.decl);
    sys.conjoin(contextSystem());
    pb::Set sec{std::move(sys)};
    // Keep only dims and stable non-index scalars (loop indices are
    // projected out: the section covers all iterations).
    sec.projectOnto([this](pb::VarId v) {
      if (vt_.isDim(v)) return true;
      if (vt_.kindOf(v) == VarKind::Index) return false;
      const VarDecl* d = vt_.declOf(v);
      return d != nullptr && !unstable_.count(d);
    });
    sec.simplify();
    return sec;
  }

  void recordWrite(const ArrayRefExpr& ref) {
    if (!ref.decl) return;
    bool affine = true;
    pb::Set sec = accessSection(ref, affine);
    if (!affine) sec = wholeArray(*ref.decl);
    auto it = written_.find(ref.decl);
    if (it == written_.end()) {
      written_[ref.decl] = std::move(sec);
    } else {
      it->second.unionWith(sec);
      it->second.simplify();  // the loop prepass re-adds identical pieces
    }
  }

  void checkRead(const ArrayRefExpr& ref) {
    if (!wanted(opt_, "padfa-uninit-read") || !ref.decl) return;
    bool affine = true;
    pb::Set sec = accessSection(ref, affine);
    if (!affine || sec.isEmpty()) return;  // unprovable or unreachable
    auto it = written_.find(ref.decl);
    if (it != written_.end() && !sec.intersect(it->second).isEmpty()) return;
    std::string name(program_.interner.str(ref.name));
    diags_.warning(ref.loc,
                   "read of '" + name +
                       "' section that no preceding statement writes (the "
                       "value is the zero fill)",
                   "padfa-uninit-read");
  }

  // --------------------------------------------------------- traversal --

  void visitReads(const Expr& e, bool writes_only) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::RealLit:
      case ExprKind::VarRef:
        return;
      case ExprKind::ArrayRef: {
        const auto& a = static_cast<const ArrayRefExpr&>(e);
        for (const auto& idx : a.indices) visitReads(*idx, writes_only);
        if (!writes_only) {
          checkOob(a);
          checkRead(a);
        }
        return;
      }
      case ExprKind::Unary:
        visitReads(*static_cast<const UnaryExpr&>(e).operand, writes_only);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        visitReads(*b.lhs, writes_only);
        visitReads(*b.rhs, writes_only);
        return;
      }
      case ExprKind::Intrinsic:
        for (const auto& a : static_cast<const IntrinsicExpr&>(e).args)
          visitReads(*a, writes_only);
        return;
    }
  }

  void walkBlock(const BlockStmt& block, bool writes_only) {
    for (const auto& st : block.stmts) walkStmt(*st, writes_only);
  }

  void walkStmt(const Stmt& s, bool writes_only) {
    cur_stmt_ = &s;  // statement whose entry environment guards the
                     // expressions visited before any recursion
    switch (s.kind) {
      case StmtKind::Assign: {
        const auto& as = static_cast<const AssignStmt&>(s);
        visitReads(*as.value, writes_only);
        if (as.target->kind == ExprKind::ArrayRef) {
          const auto& ref = static_cast<const ArrayRefExpr&>(*as.target);
          for (const auto& idx : ref.indices) visitReads(*idx, writes_only);
          if (!writes_only) checkOob(ref);
          recordWrite(ref);
        }
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        visitReads(*i.cond, writes_only);
        Pred p = Pred::fromCondition(*i.cond, program_.interner);
        ctx_.push_back(filterForRegion(p.affineUpperBound(vt_),
                                       *i.then_block));
        walkBlock(*i.then_block, writes_only);
        ctx_.pop_back();
        if (i.else_block) {
          ctx_.push_back(filterForRegion((!p).affineUpperBound(vt_),
                                         *i.else_block));
          walkBlock(*i.else_block, writes_only);
          ctx_.pop_back();
        }
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        visitReads(*f.lower, writes_only);
        visitReads(*f.upper, writes_only);
        if (f.step) visitReads(*f.step, writes_only);
        pb::System bounds;
        pb::VarId iv = vt_.idFor(f.index_decl);
        if (!unstable_.count(f.index_decl)) {
          if (auto lb = affineStable(*f.lower)) {
            pb::LinExpr ge = pb::LinExpr::var(iv);
            ge -= *lb;
            bounds.addGE0(std::move(ge));
          }
          if (auto ub = affineStable(*f.upper)) {
            pb::LinExpr le = *ub;
            le -= pb::LinExpr::var(iv);
            bounds.addGE0(std::move(le));
          }
        }
        ctx_.push_back(filterForRegion(bounds, *f.body));
        // Loop-carried writes: a later iteration may read what an earlier
        // one wrote, so the body's writes are recorded (over the full
        // index range) before reads are checked.
        if (!writes_only) walkBlock(*f.body, /*writes_only=*/true);
        walkBlock(*f.body, writes_only);
        ctx_.pop_back();
        break;
      }
      case StmtKind::Call: {
        const auto& c = static_cast<const CallStmt&>(s);
        for (const auto& a : c.args) visitReads(*a, writes_only);
        // Array arguments: the callee may write (and read) anything.
        for (const auto& a : c.args) {
          if (a->kind != ExprKind::VarRef) continue;
          const auto& vr = static_cast<const VarRefExpr&>(*a);
          if (vr.decl && vr.decl->isArray())
            written_[vr.decl] = wholeArray(*vr.decl);
        }
        break;
      }
      case StmtKind::Block:
        walkBlock(static_cast<const BlockStmt&>(s), writes_only);
        break;
      case StmtKind::Return:
        break;
    }
  }

  const Program& program_;
  const ProcDecl& proc_;
  DiagEngine& diags_;
  const LintOptions& opt_;
  const vra::RangeAnalysis* ranges_;
  const Stmt* cur_stmt_ = nullptr;
  VarTable vt_;
  std::set<const VarDecl*> unstable_;
  std::vector<pb::System> ctx_;
  std::map<const VarDecl*, pb::Set> written_;
};

/// padfa-dead-proc: a procedure unreachable from the entry procedure
/// through call edges. Whole-program view: MF programs are closed (no
/// external linkage), so an unreachable procedure is dead weight — and,
/// for the incremental engine, a change to it can never invalidate a
/// live plan. Entry is the procedure named "main"; programs without one
/// (library-style corpora driven by tests) are skipped entirely rather
/// than flagging everything.
void checkDeadProcs(const Program& program, DiagEngine& diags) {
  const ProcDecl* entry = program.findProc("main");
  if (!entry) return;
  ipa::CallGraph cg = ipa::CallGraph::build(program);
  std::set<const ProcDecl*> live = cg.reachableFrom(entry);
  for (const auto& proc : program.procs) {
    if (live.count(proc.get())) continue;
    diags.warning(proc->loc,
                  "procedure '" +
                      std::string(program.interner.str(proc->name)) +
                      "' is unreachable from 'main'",
                  "padfa-dead-proc");
  }
}

}  // namespace

const std::vector<std::string>& lintCheckerIds() {
  static const std::vector<std::string> ids = {
      "padfa-oob",           "padfa-uninit-read",
      "padfa-dead-store",    "padfa-unused",
      "padfa-loop-never-runs", "padfa-loop-single-trip",
      "padfa-shadow",        "padfa-dead-proc",
      "padfa-div-by-zero",   "padfa-dead-branch",
  };
  return ids;
}

void runLint(const Program& program, const LoopTree& loops,
             DiagEngine& diags, const LintOptions& options) {
  // One shared range analysis powers the sharpened checkers; with
  // PADFA_NO_VRA everything degrades to the constant-only behavior.
  std::unique_ptr<vra::RangeAnalysis> ranges;
  const vra::RangeAnalysis* rp = nullptr;
  bool needs_ranges = wanted(options, "padfa-oob") ||
                      wanted(options, "padfa-loop-never-runs") ||
                      wanted(options, "padfa-loop-single-trip") ||
                      wanted(options, "padfa-div-by-zero") ||
                      wanted(options, "padfa-dead-branch");
  if (needs_ranges && vra::vraEnabled()) {
    ranges = std::make_unique<vra::RangeAnalysis>(program);
    if (ranges->enabled()) rp = ranges.get();
  }
  if (wanted(options, "padfa-unused") || wanted(options, "padfa-dead-store"))
    checkUnusedAndDeadStores(program, diags, options);
  if (wanted(options, "padfa-shadow")) checkShadowing(program, diags);
  if (wanted(options, "padfa-dead-proc")) checkDeadProcs(program, diags);
  if (wanted(options, "padfa-loop-never-runs") ||
      wanted(options, "padfa-loop-single-trip"))
    checkLoopTrips(loops, diags, options, rp);
  if (wanted(options, "padfa-div-by-zero") ||
      wanted(options, "padfa-dead-branch")) {
    for (const auto& proc : program.procs) {
      RangeLintWalker walker(program, diags, options, rp);
      walker.run(*proc);
    }
  }
  if (wanted(options, "padfa-oob") || wanted(options, "padfa-uninit-read")) {
    for (const auto& proc : program.procs) {
      ContextWalker walker(program, *proc, diags, options, rp);
      walker.run();
    }
  }
}

}  // namespace padfa
