// Dynamic race oracle: shadow-memory instrumentation that checks, during
// a sequential reference execution, whether the iterations of each loop
// the analysis planned to run in parallel really are independent *under
// the plan's own declarations* (privatization, reductions, run-time
// tests).
//
// This is the third leg of the verification tripod (DESIGN.md §9): the
// static PlanAuditor re-derives independence symbolically, the oracle
// observes it concretely, and tests require the three-way agreement of
// analysis, auditor, and execution.
//
// Per audited loop the oracle enforces:
//  * shared (non-privatized) arrays  — no element may be touched by two
//    different iterations with at least one write (any such conflict is a
//    race once iterations run concurrently);
//  * privatized arrays — conflicts are fine (each thread gets a private
//    copy) but no iteration may *read* an element whose last write was an
//    earlier iteration before writing it itself: that value would come
//    from the private copy, not the earlier iteration (the LPD flow
//    criterion);
//  * scalars declared outside the loop body — no cross-iteration flow,
//    except through declared reductions (the interpreter's parallel mode
//    gives every thread its own scalar copy, so flow is the only hazard);
//  * RuntimeTest loops are only checked on invocations where the derived
//    test passes — when it fails the program runs the sequential version
//    and no independence claim is made.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dataflow/loop_plan.h"
#include "lang/ast.h"

namespace padfa {

class RaceOracle {
 public:
  /// `analysis` must outlive the oracle. Every plan with status Parallel,
  /// RuntimeTest, or Doacross becomes an audited loop. Doacross loops are
  /// checked modulo their declared syncs: an observed cross-iteration
  /// array conflict is permitted iff its iteration distance appears in
  /// the plan's sync requirements (eliminated ones included — they name
  /// real dependences, merely enforced transitively); the privatized-flow
  /// and scalar-flow rules are unchanged.
  RaceOracle(const Program& program, const AnalysisResult& analysis);

  bool isAudited(const ForStmt* loop) const {
    return loops_.count(loop) > 0;
  }
  const LoopPlan* planFor(const ForStmt* loop) const;
  size_t auditedCount() const { return loops_.size(); }

  // ------------------------------------------------ interpreter hooks --

  /// Entering an audited loop whose independence claim is armed for this
  /// invocation (RuntimeTest loops: the test passed). `privatized` maps
  /// the plan's privatized arrays to their current buffer identities.
  void loopEnter(const ForStmt* loop,
                 const std::set<const void*>& privatized);
  void loopIterStart(const ForStmt* loop, int64_t ordinal);
  void loopExit(const ForStmt* loop);

  /// A fresh array buffer came to life at this address: any shadow state
  /// recorded for a previous (freed) buffer at the same address is stale
  /// and must be dropped.
  void bufferAllocated(const void* buffer);

  void recordAccess(const void* buffer, const VarDecl* decl,
                    size_t flat_index, size_t buffer_size, bool is_write);
  void recordScalarRead(const VarDecl* decl);
  void recordScalarWrite(const VarDecl* decl);

  /// A VraAction::PromotedParallel plan's retained run-time test — the
  /// one the value-range analysis proved always-true — evaluated FALSE
  /// at loop entry. The static proof was wrong; that is a violation even
  /// if the concrete accesses of this run happen not to conflict.
  void promotedTestFailed(const ForStmt* loop);

  // ---------------------------------------------------------- results --

  struct LoopVerdict {
    const ForStmt* loop = nullptr;
    const ProcDecl* proc = nullptr;
    LoopStatus status = LoopStatus::Sequential;
    uint64_t invocations = 0;  // armed invocations observed
    bool executed = false;     // at least one armed iteration ran
    bool violation = false;
    /// First violation, human-readable (empty when none).
    std::string detail;
    SourceLoc loc;  // loop location
  };

  std::vector<LoopVerdict> verdicts() const;
  size_t violationCount() const;
  uint64_t totalAccesses() const { return total_accesses_; }

  /// Multi-line human-readable summary.
  std::string report(const Interner& interner) const;

 private:
  struct Shadow {
    std::vector<int64_t> write_iter;  // last writing iteration, -1 = never
    std::vector<int64_t> read_iter;   // last reading iteration, -1 = never
    void ensure(size_t n) {
      if (write_iter.size() < n) {
        write_iter.resize(n, -1);
        read_iter.resize(n, -1);
      }
    }
  };
  struct ScalarShadow {
    int64_t write_iter = -1;
    int64_t read_iter = -1;
  };
  struct LoopState {
    const LoopPlan* plan = nullptr;
    /// Scalars of the enclosing procedure that live across iterations
    /// (declared outside the loop body, not loop indices).
    std::set<const VarDecl*> tracked_scalars;
    /// Reduction scalars (flow through them is the declared plan).
    std::set<const VarDecl*> reduction_scalars;
    /// Doacross: iteration distances declared by the plan's sync
    /// requirements; shared-array conflicts at exactly these distances
    /// are the synchronized dependences, not races.
    bool doacross = false;
    std::set<int64_t> sync_distances;

    bool allows(int64_t d) const {
      return doacross && sync_distances.count(d) > 0;
    }

    // Per-invocation state.
    bool active = false;
    int64_t cur_iter = -1;
    std::set<const void*> privatized;
    std::map<const void*, Shadow> shadows;
    std::map<const void*, const VarDecl*> buffer_decl;  // for reporting
    std::map<const VarDecl*, ScalarShadow> scalar_shadows;

    // Aggregate over all invocations.
    uint64_t invocations = 0;
    bool executed = false;
    bool violation = false;
    std::string detail;
  };

  void flag(LoopState& st, std::string detail);

  const Program& program_;
  std::map<const ForStmt*, LoopState> loops_;
  std::vector<LoopState*> active_;
  uint64_t total_accesses_ = 0;
};

}  // namespace padfa
