#include "audit/race_oracle.h"

#include <algorithm>

namespace padfa {

namespace {

/// Collect every VarDecl declared inside a block (transitively), i.e.
/// variables whose storage is re-created on each entry.
void collectDeclared(const BlockStmt& block, std::set<const VarDecl*>& out) {
  for (const auto& d : block.decls) out.insert(d.get());
  for (const auto& st : block.stmts) {
    switch (st->kind) {
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*st);
        collectDeclared(*i.then_block, out);
        if (i.else_block) collectDeclared(*i.else_block, out);
        break;
      }
      case StmtKind::For:
        collectDeclared(*static_cast<const ForStmt&>(*st).body, out);
        break;
      case StmtKind::Block:
        collectDeclared(static_cast<const BlockStmt&>(*st), out);
        break;
      default:
        break;
    }
  }
}

}  // namespace

RaceOracle::RaceOracle(const Program& program, const AnalysisResult& analysis)
    : program_(program) {
  for (const auto& [loop, plan] : analysis.plans) {
    if (plan.status != LoopStatus::Parallel &&
        plan.status != LoopStatus::RuntimeTest &&
        plan.status != LoopStatus::Doacross)
      continue;
    LoopState st;
    st.plan = &plan;
    if (plan.status == LoopStatus::Doacross) {
      st.doacross = true;
      for (const auto& s : plan.syncs) st.sync_distances.insert(s.distance);
    }
    std::set<const VarDecl*> body_declared;
    collectDeclared(*loop->body, body_declared);
    for (const auto& red : plan.reductions)
      st.reduction_scalars.insert(red.scalar);
    if (plan.proc) {
      for (const VarDecl* d : plan.proc->all_vars) {
        if (d->isArray() || d->is_loop_index) continue;
        if (body_declared.count(d)) continue;  // fresh storage per iter
        st.tracked_scalars.insert(d);
      }
    }
    loops_[loop] = std::move(st);
  }
}

const LoopPlan* RaceOracle::planFor(const ForStmt* loop) const {
  auto it = loops_.find(loop);
  return it == loops_.end() ? nullptr : it->second.plan;
}

void RaceOracle::loopEnter(const ForStmt* loop,
                           const std::set<const void*>& privatized) {
  auto it = loops_.find(loop);
  if (it == loops_.end()) return;
  LoopState& st = it->second;
  st.active = true;
  st.cur_iter = -1;
  st.privatized = privatized;
  st.shadows.clear();
  st.buffer_decl.clear();
  st.scalar_shadows.clear();
  ++st.invocations;
  active_.push_back(&st);
}

void RaceOracle::loopIterStart(const ForStmt* loop, int64_t ordinal) {
  auto it = loops_.find(loop);
  if (it == loops_.end()) return;
  it->second.cur_iter = ordinal;
  it->second.executed = true;
}

void RaceOracle::loopExit(const ForStmt* loop) {
  auto it = loops_.find(loop);
  if (it == loops_.end()) return;
  LoopState& st = it->second;
  st.active = false;
  active_.erase(std::remove(active_.begin(), active_.end(), &st),
                active_.end());
}

void RaceOracle::bufferAllocated(const void* buffer) {
  for (LoopState* st : active_) {
    st->shadows.erase(buffer);
    st->buffer_decl.erase(buffer);
    // A buffer reborn at a stale privatized address no longer is the
    // privatized array (those resolve at loopEnter), so drop it.
    st->privatized.erase(buffer);
  }
}

void RaceOracle::promotedTestFailed(const ForStmt* loop) {
  auto it = loops_.find(loop);
  if (it == loops_.end()) return;
  LoopState& st = it->second;
  st.executed = true;
  flag(st, "promoted run-time test (statically proved always-true) "
           "evaluated false at loop entry");
}

void RaceOracle::flag(LoopState& st, std::string detail) {
  if (!st.violation) {
    st.violation = true;
    st.detail = std::move(detail);
  }
}

void RaceOracle::recordAccess(const void* buffer, const VarDecl* decl,
                              size_t flat_index, size_t buffer_size,
                              bool is_write) {
  if (active_.empty()) return;
  ++total_accesses_;
  for (LoopState* stp : active_) {
    LoopState& st = *stp;
    if (st.cur_iter < 0) continue;  // before the first iteration
    Shadow& sh = st.shadows[buffer];
    sh.ensure(buffer_size);
    if (decl) st.buffer_decl[buffer] = decl;
    int64_t& w = sh.write_iter[flat_index];
    int64_t& r = sh.read_iter[flat_index];
    const int64_t t = st.cur_iter;
    const bool privatized = st.privatized.count(buffer) > 0;
    std::string_view name =
        decl ? program_.interner.str(decl->name) : "<array>";
    if (is_write) {
      const bool waw = w != -1 && w != t && !st.allows(t - w);
      const bool war = r != -1 && r != t && !st.allows(t - r);
      if (!privatized && (waw || war))
        flag(st, "shared array '" + std::string(name) +
                     "' element written by iteration " + std::to_string(t) +
                     " after iteration " + std::to_string(waw ? w : r) +
                     " accessed it");
      w = t;
    } else {
      if (w != -1 && w != t) {
        if (privatized)
          flag(st, "privatized array '" + std::string(name) +
                       "' carries a value from iteration " +
                       std::to_string(w) + " into iteration " +
                       std::to_string(t) + " (cross-iteration flow)");
        else if (!st.allows(t - w))
          flag(st, "shared array '" + std::string(name) +
                       "' element read by iteration " + std::to_string(t) +
                       " was written by iteration " + std::to_string(w));
      }
      r = t;
    }
  }
}

void RaceOracle::recordScalarRead(const VarDecl* decl) {
  for (LoopState* stp : active_) {
    LoopState& st = *stp;
    if (st.cur_iter < 0 || !st.tracked_scalars.count(decl)) continue;
    ScalarShadow& sh = st.scalar_shadows[decl];
    // Flow: the last write came from an earlier iteration and this
    // iteration has not overwritten the scalar yet.
    if (sh.write_iter != -1 && sh.write_iter != st.cur_iter &&
        !st.reduction_scalars.count(decl)) {
      flag(st, "scalar '" + std::string(program_.interner.str(decl->name)) +
                   "' read in iteration " + std::to_string(st.cur_iter) +
                   " carries the value written by iteration " +
                   std::to_string(sh.write_iter));
    }
    sh.read_iter = st.cur_iter;
  }
}

void RaceOracle::recordScalarWrite(const VarDecl* decl) {
  for (LoopState* stp : active_) {
    LoopState& st = *stp;
    if (st.cur_iter < 0 || !st.tracked_scalars.count(decl)) continue;
    st.scalar_shadows[decl].write_iter = st.cur_iter;
  }
}

std::vector<RaceOracle::LoopVerdict> RaceOracle::verdicts() const {
  std::vector<LoopVerdict> out;
  for (const auto& [loop, st] : loops_) {
    LoopVerdict v;
    v.loop = loop;
    v.proc = st.plan->proc;
    v.status = st.plan->status;
    v.invocations = st.invocations;
    v.executed = st.executed;
    v.violation = st.violation;
    v.detail = st.detail;
    v.loc = loop->loc;
    out.push_back(std::move(v));
  }
  return out;
}

size_t RaceOracle::violationCount() const {
  size_t n = 0;
  for (const auto& [loop, st] : loops_)
    if (st.violation) ++n;
  return n;
}

std::string RaceOracle::report(const Interner&) const {
  std::string out;
  for (const auto& [loop, st] : loops_) {
    out += "loop " + loop->loop_id + " [" +
           std::string(loopStatusName(st.plan->status)) + "] ";
    if (!st.executed)
      out += st.invocations == 0 ? "not reached" : "armed but no iterations";
    else if (st.violation)
      out += "VIOLATION: " + st.detail;
    else
      out += "clean over " + std::to_string(st.invocations) + " invocation(s)";
    out += '\n';
  }
  return out;
}

}  // namespace padfa
