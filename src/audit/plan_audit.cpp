#include "audit/plan_audit.h"

#include <map>
#include <memory>
#include <set>

#include "audit/loop_conflicts.h"
#include "dataflow/doacross.h"
#include "predicate/pred.h"
#include "presburger/system.h"
#include "symbolic/vartable.h"
#include "vra/vra.h"

namespace padfa {

namespace {

/// Layers the PlanAuditor's verdict discipline over the shared
/// LoopConflictScanner (see loop_conflicts.h — the access model and the
/// Presburger conflict systems live there, shared with the PDG builder).
class LoopAuditor {
 public:
  /// `promotion_verified`: the caller independently re-proved a
  /// PromotedParallel plan's retained test with its own RangeAnalysis.
  /// Ignored for other plans.
  LoopAuditor(const Program& program, const LoopPlan& plan,
              bool promotion_verified)
      : program_(program), plan_(plan), promotion_verified_(promotion_verified),
        scanner_(program, plan.loop, plan.proc) {}

  LoopAudit run() {
    audit_.loop = plan_.loop;
    audit_.proc = plan_.proc;
    audit_.status = plan_.status;
    scanner_.scan();
    checkScalars();
    if (plan_.status == LoopStatus::Doacross) checkSyncs();
    testPairs();
    return std::move(audit_);
  }

 private:
  using PairEq = LoopConflictScanner::PairEq;

  bool isPrivatized(const VarDecl* array) const {
    for (const auto& pa : plan_.privatized)
      if (pa.array == array) return true;
    return false;
  }

  void raiseTo(AuditVerdict v) {
    if (static_cast<uint8_t>(v) > static_cast<uint8_t>(audit_.verdict))
      audit_.verdict = v;
  }

  void testPairs() {
    const auto& accesses = scanner_.accesses();
    audit_.accesses = accesses.size();
    if (scanner_.overflow()) {
      audit_.notes.push_back(
          "access cap (" + std::to_string(LoopConflictScanner::kMaxAccesses) +
          ") exceeded; audit is partial");
      raiseTo(AuditVerdict::Inconclusive);
    }
    // A PromotedParallel plan's retained test participates in pair
    // discharge ONLY when this audit's own range analysis re-proved it
    // true: the promotion then holds exactly as the two-version dispatch
    // would have at run time. A promotion the auditor cannot reproduce
    // gets no such credit — its conflicts fall through to the plain
    // Parallel discipline below and surface as Unsound.
    bool promoted = plan_.vra_action == VraAction::PromotedParallel &&
                    plan_.status == LoopStatus::Parallel;
    bool test_armed = plan_.status == LoopStatus::RuntimeTest ||
                      (promoted && promotion_verified_);
    if (promoted && !promotion_verified_) {
      audit_.notes.push_back(
          "value-range promotion not reproducible: the retained run-time "
          "test does not re-prove true");
      raiseTo(AuditVerdict::Inconclusive);
    }
    pb::System test_ub;
    if (test_armed)
      test_ub = plan_.runtime_test.affineUpperBound(scanner_.varTable());
    for (size_t i = 0; i < accesses.size(); ++i) {
      for (size_t j = i; j < accesses.size(); ++j) {
        const ConflictAccess& a = accesses[i];
        const ConflictAccess& b = accesses[j];
        if (a.root != b.root || (!a.write && !b.write)) continue;
        ++audit_.pairs_tested;
        if (isPrivatized(a.root)) {
          ++audit_.pairs_privatized;
          continue;
        }
        PairEq eq = LoopConflictScanner::pairEq(a, b);
        if (!scanner_.conflictExists(a, b, eq, nullptr)) {
          ++audit_.pairs_independent;
          continue;
        }
        if (test_armed && !scanner_.conflictExists(a, b, eq, &test_ub)) {
          ++audit_.pairs_test;
          raiseTo(AuditVerdict::DischargedTest);
          continue;
        }
        if (plan_.status == LoopStatus::Doacross) {
          auditDoacrossPair(a, b, eq, i == j);
          continue;
        }
        std::string name(program_.interner.str(a.root->name));
        std::string where = "'" + name + "' (" + (a.write ? "write" : "read") +
                            " at " + a.loc.str() + " vs " +
                            (b.write ? "write" : "read") + " at " +
                            b.loc.str() + ")";
        bool exact = LoopConflictScanner::pairExactly(a, b, eq) &&
                     scanner_.loopExact();
        // A verified promotion keeps the RuntimeTest discipline: the test
        // re-proved true, so an affinely-undischargeable conflict defers
        // to the race oracle instead of refuting the plan.
        if (exact && plan_.status == LoopStatus::Parallel && !test_armed) {
          audit_.notes.push_back("cross-iteration conflict on " + where);
          raiseTo(AuditVerdict::Unsound);
        } else if (exact) {
          audit_.notes.push_back(
              "run-time test not strong enough (affinely) to exclude a "
              "conflict on " + where);
          raiseTo(AuditVerdict::Inconclusive);
        } else {
          audit_.notes.push_back("cannot model " + where +
                                 " exactly; deferring to the race oracle");
          raiseTo(AuditVerdict::Inconclusive);
        }
      }
    }
  }

  bool syncDeclared(const Stmt* src, const Stmt* snk, int64_t dist) const {
    for (const auto& s : plan_.syncs)
      if (s.source == src && s.sink == snk && s.distance == dist) return true;
    return false;
  }

  /// Doacross discharge: a carried pair is fine exactly when each
  /// feasible direction has an exactly-modeled constant distance that
  /// matches a declared (source, sink, distance) sync requirement —
  /// including eliminated ones, which checkSyncs() separately re-derives
  /// from the kept set. Anything exact that the syncs do not cover is a
  /// dependence the pipelined execution would violate: Unsound.
  void auditDoacrossPair(const ConflictAccess& a, const ConflictAccess& b,
                         PairEq eq, bool same) {
    const ConflictAccess* dirs[2][2] = {{&a, &b}, {&b, &a}};
    size_t ndirs = same ? 1 : 2;
    for (size_t d = 0; d < ndirs; ++d) {
      const ConflictAccess* x = dirs[d][0];
      const ConflictAccess* y = dirs[d][1];
      if (!scanner_.conflictInOrder(*x, *y, eq, nullptr)) continue;
      auto g = scanner_.geometry(*x, *y, eq);
      std::string name(program_.interner.str(x->root->name));
      std::string where = "'" + name + "' (" +
                          (x->write ? "write" : "read") + " at " +
                          x->loc.str() + " -> " +
                          (y->write ? "write" : "read") + " at " +
                          y->loc.str() + ")";
      bool exact = LoopConflictScanner::pairExactly(*x, *y, eq) &&
                   scanner_.loopExact();
      // Geometry is in index space; plan.syncs store iteration ordinals
      // (index distance / constant step) — convert before matching.
      std::optional<int64_t> step = doacrossConstStep(*plan_.loop);
      if (exact && step && g.distance && *g.distance >= 1 &&
          *g.distance % *step == 0 &&
          syncDeclared(x->anchor, y->anchor, *g.distance / *step)) {
        ++audit_.pairs_synced;
        raiseTo(AuditVerdict::DischargedSync);
        continue;
      }
      if (exact) {
        audit_.notes.push_back("carried dependence on " + where +
                               " not covered by a declared sync");
        raiseTo(AuditVerdict::Unsound);
      } else {
        audit_.notes.push_back("cannot model " + where +
                               " exactly; deferring to the race oracle");
        raiseTo(AuditVerdict::Inconclusive);
      }
    }
  }

  /// Re-verify every eliminated sync requirement against the kept set,
  /// independently rebuilding the statement-order facts from the AST. A
  /// forged or stale elimination (kept set no longer implies the dropped
  /// edge) is a dependence the execution will not enforce: Unsound.
  void checkSyncs() {
    audit_.syncs_total = plan_.syncs.size();
    audit_.syncs_kept = plan_.keptSyncCount();
    SyncOrderInfo info = buildSyncOrderInfo(*plan_.loop);
    std::vector<SyncRequirement> kept;
    for (const auto& s : plan_.syncs)
      if (!s.eliminated) kept.push_back(s);
    for (const auto& s : plan_.syncs) {
      if (!s.eliminated) continue;
      if (!syncRequirementCovered(s, kept, info)) {
        audit_.notes.push_back(
            "eliminated sync requirement (distance " +
            std::to_string(s.distance) +
            ") is not implied by the kept requirements");
        raiseTo(AuditVerdict::Unsound);
      }
    }
  }

  /// Scalars the parallel version must handle: anything assigned in the
  /// body that outlives an iteration needs a plan declaration.
  void checkScalars() {
    // Cheap over-approximation of "read somewhere in the body".
    std::set<const VarDecl*> read_set;
    collectBodyReads(*plan_.loop->body, read_set);
    for (const VarDecl* d : scanner_.bodyAssigned()) {
      if (!d || d->isArray() || d->is_loop_index) continue;
      if (scanner_.bodyDeclared().count(d)) continue;  // fresh per iteration
      if (!read_set.count(d)) continue;  // write-only: no flow hazard
      bool covered = false;
      for (const VarDecl* p : plan_.private_scalars) covered |= p == d;
      for (const VarDecl* p : plan_.copy_out_scalars) covered |= p == d;
      for (const auto& r : plan_.reductions) covered |= r.scalar == d;
      if (!covered) {
        audit_.notes.push_back(
            "scalar '" + std::string(program_.interner.str(d->name)) +
            "' is assigned and read in the body but not privatized, copied "
            "out, or reduced");
        raiseTo(AuditVerdict::Inconclusive);
      }
    }
  }

  const Program& program_;
  const LoopPlan& plan_;
  bool promotion_verified_ = false;
  LoopConflictScanner scanner_;
  LoopAudit audit_;
};

}  // namespace

std::string_view auditVerdictName(AuditVerdict v) {
  switch (v) {
    case AuditVerdict::Independent: return "independent";
    case AuditVerdict::DischargedTest: return "discharged-by-test";
    case AuditVerdict::DischargedSync: return "discharged-by-sync";
    case AuditVerdict::Inconclusive: return "inconclusive";
    case AuditVerdict::Unsound: return "UNSOUND";
  }
  return "?";
}

size_t AuditReport::count(AuditVerdict v) const {
  size_t n = 0;
  for (const auto& la : loops)
    if (la.verdict == v) ++n;
  return n;
}

AuditReport auditPlans(const Program& program, const AnalysisResult& analysis,
                       DiagEngine& diags) {
  AuditReport report;
  // The auditor's own range analysis (built lazily, once): promotions are
  // re-derived from scratch rather than trusted, the same way the conflict
  // systems re-derive independence.
  std::unique_ptr<vra::RangeAnalysis> ranges;
  auto promotionVerified = [&](const LoopPlan& plan) {
    if (plan.vra_action != VraAction::PromotedParallel) return false;
    if (!ranges) ranges = std::make_unique<vra::RangeAnalysis>(program);
    return ranges->enabled() &&
           ranges->proveTrue(plan.loop, plan.runtime_test);
  };
  for (const auto& [loop, plan] : analysis.plans) {
    if (plan.status != LoopStatus::Parallel &&
        plan.status != LoopStatus::RuntimeTest &&
        plan.status != LoopStatus::Doacross)
      continue;
    LoopAuditor auditor(program, plan, promotionVerified(plan));
    LoopAudit la = auditor.run();
    if (la.verdict == AuditVerdict::Unsound) {
      std::string msg = "plan marks loop " + loop->loop_id + " " +
                        std::string(loopStatusName(plan.status)) +
                        " but the auditor found a " +
                        (la.notes.empty() ? "conflict" : la.notes.front());
      diags.warning(loop->loc, msg, "audit-unsound");
    } else if (la.verdict == AuditVerdict::Inconclusive) {
      diags.note(loop->loc,
                 "audit of loop " + loop->loop_id + " inconclusive: " +
                     (la.notes.empty() ? "coarse modeling" : la.notes.front()),
                 "audit-inconclusive");
    }
    report.loops.push_back(std::move(la));
  }
  return report;
}

}  // namespace padfa
