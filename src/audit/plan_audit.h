// PlanAuditor: an independent static soundness check over the analysis's
// parallelization plans (DESIGN.md §9).
//
// For every loop the analysis planned Parallel or RuntimeTest, the
// auditor re-derives cross-iteration independence from first principles:
// it walks the loop body (inlining calls, which the interprocedural
// analysis summarizes instead), collects every array access as a
// *linearized* affine offset plus an affine execution context (enclosing
// loop bounds and guard conditions), and for each pair of accesses to the
// same underlying buffer with at least one write builds the Presburger
// conflict system
//
//     bounds(i1) ∧ bounds(i2) ∧ i1 < i2 ∧ ctx_a(i1) ∧ ctx_b(i2)
//          ∧ offset_a(i1) = offset_b(i2)
//
// directly — deliberately NOT reusing the summary/predicate machinery the
// plans came from, so a bug there cannot hide here (N-version checking).
// Linearized offsets make reshaped (sequence-associated) formals exact.
//
// Conflicts are discharged by the plan's own declarations:
//  * arrays in plan.privatized — every thread gets a private copy, so
//    cross-iteration conflicts are by-design (the dynamic race oracle
//    verifies the flow-freedom that privatization additionally needs);
//  * RuntimeTest plans — the conflict system is conjoined with the affine
//    upper bound of the derived run-time test; infeasibility means the
//    test passing implies independence, so the parallel version is safe.
//
// Verdict discipline: `Unsound` is only reported when the conflict system
// models the two accesses *exactly* (affine subscripts, constant view
// extents, exactly-converted guards and bounds) — a feasible system over
// an over-approximated context proves nothing and yields `Inconclusive`,
// which the dynamic oracle then cross-examines.
#pragma once

#include <string>
#include <vector>

#include "dataflow/loop_plan.h"
#include "lang/ast.h"
#include "support/diagnostics.h"

namespace padfa {

enum class AuditVerdict : uint8_t {
  Independent,   // every pair proven conflict-free (or privatized)
  DischargedTest,// some pair needed the run-time test to discharge
  DischargedSync,// some pair is carried but covered by a declared sync
  Inconclusive,  // some pair could not be decided (coarse modeling)
  Unsound,       // exact conflict found that nothing discharges
};

std::string_view auditVerdictName(AuditVerdict v);

struct LoopAudit {
  const ForStmt* loop = nullptr;
  const ProcDecl* proc = nullptr;
  LoopStatus status = LoopStatus::Sequential;
  AuditVerdict verdict = AuditVerdict::Independent;
  size_t accesses = 0;          // array accesses collected (after inlining)
  size_t pairs_tested = 0;      // pairs run through the conflict system
  size_t pairs_independent = 0; // proven infeasible outright
  size_t pairs_privatized = 0;  // discharged by a privatization declaration
  size_t pairs_test = 0;        // discharged by the run-time test
  size_t pairs_synced = 0;      // discharged by a declared sync requirement
  size_t syncs_total = 0;       // sync requirements before elimination
  size_t syncs_kept = 0;        // sync requirements after elimination
  /// Human-readable explanations for Inconclusive / Unsound pairs.
  std::vector<std::string> notes;
};

struct AuditReport {
  std::vector<LoopAudit> loops;

  size_t count(AuditVerdict v) const;
  size_t auditedCount() const { return loops.size(); }
  /// No loop came back Unsound.
  bool clean() const { return count(AuditVerdict::Unsound) == 0; }
};

/// Audit every Parallel / RuntimeTest / Doacross plan in `analysis`.
/// For Doacross plans each surviving directed carried dependence must
/// match a declared (source, sink, distance) sync requirement exactly,
/// and every eliminated requirement must be re-derivable from the kept
/// ones (syncRequirementCovered). Emits `audit-unsound` warnings
/// (promotable via -Werror) and `audit-inconclusive` notes to `diags`.
AuditReport auditPlans(const Program& program, const AnalysisResult& analysis,
                       DiagEngine& diags);

}  // namespace padfa
