// MF-lint: a battery of static checkers over the AST + region IR, driven
// by DiagEngine. Each checker emits diagnostics with a stable id so tools
// and tests can match kinds instead of message text, and so individual
// checkers can be promoted to errors (-Werror / -Werror=<id>).
//
// Shipped checkers (see README for the full reference):
//   padfa-oob              subscript provably out of bounds whenever the
//                          access executes (presburger bounds vs extents,
//                          sharpened by flow-sensitive value ranges)
//   padfa-uninit-read      read of an array section no execution could
//                          have written (values are the zero-fill only)
//   padfa-dead-store       variable written but never read anywhere
//   padfa-unused           variable declared but never referenced
//   padfa-loop-never-runs  loop bounds provably exclude every iteration
//                          (constants, or value ranges when VRA is on)
//   padfa-loop-single-trip loop bounds provably admit exactly one trip
//   padfa-shadow           declaration shadows an outer binding
//   padfa-dead-proc        procedure unreachable from `main` through
//                          call edges (whole-program call graph)
//   padfa-div-by-zero      integer divisor provably zero whenever the
//                          division executes (value ranges / constants)
//   padfa-dead-branch      branch condition the value ranges prove
//                          constant, leaving one arm unreachable
//
// Philosophy: a warning must mean a bug with high probability. Checkers
// only fire on *provable* facts (infeasibility in the affine domain,
// whole-program absence of references, definite value intervals);
// anything unprovable stays quiet. The range-powered checkers use the
// vra/ subsystem and degrade to their constant-only behavior under
// PADFA_NO_VRA.
#pragma once

#include <string>
#include <vector>

#include "ir/region.h"
#include "lang/ast.h"
#include "support/diagnostics.h"

namespace padfa {

struct LintOptions {
  /// Empty: run everything. Otherwise only checkers whose id is listed.
  std::vector<std::string> only;
};

/// All stable checker ids, in documentation order.
const std::vector<std::string>& lintCheckerIds();

/// Run the checker battery over an analyzed program (Sema must have
/// succeeded). Appends warnings/notes to `diags`; -Werror promotion is
/// the engine's concern (DiagEngine::setWarningsAsErrors).
void runLint(const Program& program, const LoopTree& loops,
             DiagEngine& diags, const LintOptions& options = {});

}  // namespace padfa
