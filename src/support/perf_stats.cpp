#include "support/perf_stats.h"

#include <cstdio>
#include <cstdlib>

namespace padfa {

namespace {

// -1 = no override (follow the environment), 0 = disabled, 1 = enabled.
std::atomic<int> g_caches_override{-1};

bool envCachesEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("PADFA_NO_CACHE");
    return !(v && *v);
  }();
  return enabled;
}

void appendLine(std::string& out, const char* name, const CacheStats& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  %-12s hits=%llu misses=%llu inserts=%llu hit-rate=%.1f%%\n",
                name,
                static_cast<unsigned long long>(
                    s.hits.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    s.misses.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    s.inserts.load(std::memory_order_relaxed)),
                100.0 * s.hitRate());
  out += buf;
}

}  // namespace

PerfStats& PerfStats::instance() {
  static PerfStats stats;
  return stats;
}

std::string PerfStats::report() const {
  std::string out = "cache statistics:\n";
  appendLine(out, "feasibility", feasibility);
  appendLine(out, "implies", implies);
  appendLine(out, "simplify", simplify);
  appendLine(out, "summary", summary);
  uint64_t runs = incremental.runs.load(std::memory_order_relaxed);
  if (runs > 0) {
    char buf[200];
    std::snprintf(
        buf, sizeof(buf),
        "  %-12s runs=%llu analyzed=%llu replayed=%llu fp-hits=%llu "
        "fp-misses=%llu last-dirty=%llu\n",
        "incremental", static_cast<unsigned long long>(runs),
        static_cast<unsigned long long>(
            incremental.procs_analyzed.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            incremental.procs_replayed.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            incremental.fingerprint_hits.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            incremental.fingerprint_misses.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            incremental.last_dirty_size.load(std::memory_order_relaxed)));
    out += buf;
  }
  uint64_t proofs = vra.proofs.load(std::memory_order_relaxed);
  if (proofs > 0) {
    char buf[200];
    std::snprintf(
        buf, sizeof(buf),
        "  %-12s proofs=%llu discharged=%llu promoted=%llu demoted=%llu "
        "doa-demoted=%llu\n",
        "vra", static_cast<unsigned long long>(proofs),
        static_cast<unsigned long long>(
            vra.proofs_discharged.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vra.promotions.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vra.demotions.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vra.doacross_demotions.load(std::memory_order_relaxed)));
    out += buf;
  }
  return out;
}

JsonValue cacheStatsToJson(const CacheStats& s) {
  JsonValue v = JsonValue::object();
  v.set("hits", JsonValue::of(static_cast<int64_t>(
                    s.hits.load(std::memory_order_relaxed))));
  v.set("misses", JsonValue::of(static_cast<int64_t>(
                      s.misses.load(std::memory_order_relaxed))));
  v.set("inserts", JsonValue::of(static_cast<int64_t>(
                       s.inserts.load(std::memory_order_relaxed))));
  v.set("hit_rate", JsonValue::of(s.hitRate()));
  return v;
}

JsonValue perfStatsToJson(const PerfStats& stats) {
  JsonValue v = JsonValue::object();
  v.set("feasibility", cacheStatsToJson(stats.feasibility));
  v.set("implies", cacheStatsToJson(stats.implies));
  v.set("simplify", cacheStatsToJson(stats.simplify));
  v.set("summary", cacheStatsToJson(stats.summary));
  return v;
}

JsonValue incrementalCountersToJson(const IncrementalCounters& c) {
  JsonValue v = JsonValue::object();
  auto put = [&v](const char* key, const std::atomic<uint64_t>& a) {
    v.set(key, JsonValue::of(static_cast<int64_t>(
                   a.load(std::memory_order_relaxed))));
  };
  put("runs", c.runs);
  put("procs_analyzed", c.procs_analyzed);
  put("procs_replayed", c.procs_replayed);
  put("fingerprint_hits", c.fingerprint_hits);
  put("fingerprint_misses", c.fingerprint_misses);
  put("last_dirty_size", c.last_dirty_size);
  return v;
}

JsonValue vraCountersToJson(const VraCounters& c) {
  JsonValue v = JsonValue::object();
  auto put = [&v](const char* key, const std::atomic<uint64_t>& a) {
    v.set(key, JsonValue::of(static_cast<int64_t>(
                   a.load(std::memory_order_relaxed))));
  };
  put("analyses", c.analyses);
  put("widenings", c.widenings);
  put("proofs", c.proofs);
  put("proofs_discharged", c.proofs_discharged);
  put("promotions", c.promotions);
  put("demotions", c.demotions);
  put("doacross_demotions", c.doacross_demotions);
  return v;
}

bool cachesEnabled() {
  int ov = g_caches_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  return envCachesEnabled();
}

void setCachesEnabled(bool enabled) {
  g_caches_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void clearCachesEnabledOverride() {
  g_caches_override.store(-1, std::memory_order_relaxed);
}

}  // namespace padfa
