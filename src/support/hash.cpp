#include "support/hash.h"

#include <array>

namespace padfa {

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    t[i] = c;
  }
  return t;
}

}  // namespace

uint32_t crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = makeCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

uint64_t contentHash64(std::string_view s) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char ch : s) {
    h ^= ch;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hashHex(uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace padfa
