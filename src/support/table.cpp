#include "support/table.h"

#include <algorithm>
#include <cstdio>

namespace padfa {

TextTable::TextTable(std::vector<std::string> header)
    : num_cols_(header.size()) {
  rows_.push_back({std::move(header), false});
  addSeparator();
}

void TextTable::addRow(std::vector<std::string> cells) {
  cells.resize(num_cols_);
  rows_.push_back({std::move(cells), false});
}

void TextTable::addSeparator() { rows_.push_back({{}, true}); }

std::string TextTable::render() const {
  std::vector<size_t> widths(num_cols_, 0);
  for (const auto& r : rows_) {
    if (r.separator) continue;
    for (size_t c = 0; c < r.cells.size(); ++c)
      widths[c] = std::max(widths[c], r.cells[c].size());
  }
  std::string out;
  for (const auto& r : rows_) {
    if (r.separator) {
      for (size_t c = 0; c < num_cols_; ++c) {
        out += '+';
        out.append(widths[c] + 2, '-');
      }
      out += "+\n";
      continue;
    }
    for (size_t c = 0; c < num_cols_; ++c) {
      out += "| ";
      out += r.cells[c];
      out.append(widths[c] - r.cells[c].size() + 1, ' ');
    }
    out += "|\n";
  }
  return out;
}

std::string fmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmtPercent(double num, double den, int precision) {
  if (den == 0) return "-";
  return fmtDouble(100.0 * num / den, precision) + "%";
}

}  // namespace padfa
