// Resource governance for the analysis pipeline.
//
// The exact integer set operations the analysis sits on (Fourier–Motzkin
// elimination, subtraction by constraint splitting) are worst-case
// exponential. An AnalysisBudget bounds the damage an adversarial input
// can do: it carries a wall-clock deadline, a Fourier–Motzkin step
// counter (global and per planned loop), constraint/piece production
// counters, and a recursion-depth guard. Cooperative check points in the
// presburger layer and the analyzer charge against the budget; exhaustion
// raises the structured BudgetExceeded signal, which the analyzer
// catches at well-defined degradation boundaries (per loop, per
// procedure, whole program) and converts into conservative results —
// fewer loops parallelized, never a wrong parallelization, never a crash
// or a hang.
//
// The budget is installed for the current thread with a BudgetScope; code
// that runs without one (unit tests, the interpreter, normal library use
// of the presburger layer) pays a single thread-local pointer test per
// charge point and is otherwise unaffected. With the default limits the
// budget is inert on the whole corpus: only the recursion guard is armed,
// far above any real program's nesting depth.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <string>

namespace padfa {

class FaultInjector;

/// Limits for one analysis run. A value of 0 means "unlimited" for every
/// field except max_recursion_depth, where 0 also means unlimited but the
/// default is a large finite guard.
struct BudgetLimits {
  double deadline_seconds = 0;      ///< wall clock for the whole analysis
  uint64_t max_fm_steps = 0;        ///< Fourier–Motzkin eliminations, global
  uint64_t max_loop_fm_steps = 0;   ///< FM eliminations per planned loop
  uint64_t max_constraints = 0;     ///< constraints produced, global
  uint64_t max_pieces = 0;          ///< set pieces processed, global
  uint32_t max_recursion_depth = 0; ///< analyzer statement-nesting depth

  /// The inert production defaults: everything unlimited except a
  /// recursion guard far above real nesting depths.
  static BudgetLimits defaults();

  /// `base` with any PADFA_BUDGET_* environment overrides applied:
  /// PADFA_BUDGET_DEADLINE_MS, PADFA_BUDGET_FM_STEPS,
  /// PADFA_BUDGET_LOOP_FM_STEPS, PADFA_BUDGET_CONSTRAINTS,
  /// PADFA_BUDGET_PIECES, PADFA_BUDGET_RECURSION.
  static BudgetLimits fromEnv(const BudgetLimits& base);

  /// True when a budget built from these limits could exhaust: a finite
  /// limit beyond the recursion backstop is set, or the PADFA_FAULT_RATE
  /// fault injector is armed in the environment. Shared by the daemon's
  /// persist guard, the incremental path, and the driver's decision to
  /// skip value-range refinement under governance (degraded plans must
  /// never feed promotions).
  bool governed() const;
};

enum class BudgetCause : uint8_t {
  Deadline,
  FmSteps,
  LoopFmSteps,
  Constraints,
  Pieces,
  Recursion,
  Injected,  // synthetic exhaustion forced by a FaultInjector
};

const char* budgetCauseName(BudgetCause cause);

/// Structured signal thrown at a cooperative check point when a budget
/// dimension is exhausted. Catch boundaries convert it into conservative
/// analysis results; it must never escape analyzeProgram().
class BudgetExceeded : public std::exception {
 public:
  explicit BudgetExceeded(BudgetCause cause);
  BudgetCause cause() const { return cause_; }
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  BudgetCause cause_;
  std::string message_;
};

class AnalysisBudget {
 public:
  explicit AnalysisBudget(const BudgetLimits& limits,
                          FaultInjector* injector = nullptr);

  /// The budget installed on this thread by the innermost BudgetScope
  /// (nullptr when none — all charge points are then no-ops).
  static AnalysisBudget* current();

  /// Reset the per-loop FM slice (called when planning of a loop starts).
  void beginLoop();

  /// One Fourier–Motzkin elimination over `constraints` constraints.
  void chargeFmStep(uint64_t constraints);

  /// Piece-level set operation touching `pieces` pieces.
  void chargePieces(uint64_t pieces);

  /// Statement-nesting guard for the analyzer's recursive traversal.
  void enterRecursion();
  void leaveRecursion();

  /// True once a *global* dimension (deadline, global steps/constraints/
  /// pieces) has been exhausted; every later charge re-raises immediately
  /// so the remaining pipeline degrades quickly instead of re-paying the
  /// partial work. Per-loop and injected exhaustions are transient.
  bool exhaustedGlobally() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  /// True when this budget can actually run out: a finite limit beyond
  /// the recursion backstop is set, or a fault injector is attached. The
  /// memoization layer bypasses its caches under a governed budget —
  /// charge points are part of the observable degradation contract, and
  /// a cache hit that skipped them would let a starved analysis dodge
  /// the exhaustion it is supposed to hit.
  bool governed() const {
    return injector_ != nullptr || limits_.deadline_seconds > 0 ||
           limits_.max_fm_steps != 0 || limits_.max_loop_fm_steps != 0 ||
           limits_.max_constraints != 0 || limits_.max_pieces != 0;
  }

  // Telemetry.
  uint64_t fmSteps() const { return fm_steps_.load(std::memory_order_relaxed); }
  uint64_t constraintsBuilt() const {
    return constraints_.load(std::memory_order_relaxed);
  }
  uint64_t piecesTouched() const {
    return pieces_.load(std::memory_order_relaxed);
  }

 private:
  [[noreturn]] void blow(BudgetCause cause);
  void probe();  // deadline subsample + fault injection

  BudgetLimits limits_;
  FaultInjector* injector_ = nullptr;
  double deadline_at_ = 0;  // monotonic seconds; 0 = none
  // Counters are atomic with relaxed ordering: a budget is normally
  // thread-local (installed by a BudgetScope), but nothing stops a caller
  // from sharing one AnalysisBudget across the concurrently-analyzed
  // baseline/predicated pair, and limit checks only need eventually-
  // consistent totals, not ordering.
  std::atomic<uint64_t> fm_steps_{0};
  std::atomic<uint64_t> loop_fm_steps_{0};
  std::atomic<uint64_t> constraints_{0};
  std::atomic<uint64_t> pieces_{0};
  std::atomic<uint32_t> depth_{0};
  std::atomic<uint64_t> probe_tick_{0};
  std::atomic<bool> exhausted_{false};
  std::atomic<BudgetCause> cause_{BudgetCause::Deadline};

  friend class BudgetScope;
};

/// RAII installer: makes `b` the thread's current budget for its
/// lifetime, restoring the previous one (scopes nest) on destruction.
class BudgetScope {
 public:
  explicit BudgetScope(AnalysisBudget& b);
  ~BudgetScope();
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  AnalysisBudget* prev_;
};

/// RAII recursion-depth guard against the current budget (no-op when no
/// budget is installed).
class RecursionGuard {
 public:
  RecursionGuard() : budget_(AnalysisBudget::current()) {
    if (budget_) budget_->enterRecursion();
  }
  ~RecursionGuard() {
    if (budget_) budget_->leaveRecursion();
  }
  RecursionGuard(const RecursionGuard&) = delete;
  RecursionGuard& operator=(const RecursionGuard&) = delete;

 private:
  AnalysisBudget* budget_;
};

}  // namespace padfa
