// String interning: maps identifiers to dense small integer ids so symbol
// comparisons and hash-map keys are O(1) integers throughout the compiler.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace padfa {

/// Dense id for an interned string. Id 0 is reserved for the empty string.
struct Symbol {
  uint32_t id = 0;
  bool empty() const { return id == 0; }
  friend bool operator==(const Symbol&, const Symbol&) = default;
  friend auto operator<=>(const Symbol&, const Symbol&) = default;
};

class Interner {
 public:
  Interner() { intern(""); }

  Symbol intern(std::string_view s) {
    auto it = map_.find(std::string(s));
    if (it != map_.end()) return Symbol{it->second};
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(s);
    map_.emplace(strings_.back(), id);
    return Symbol{id};
  }

  std::string_view str(Symbol s) const { return strings_.at(s.id); }
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> map_;
};

}  // namespace padfa

template <>
struct std::hash<padfa::Symbol> {
  size_t operator()(padfa::Symbol s) const noexcept { return s.id; }
};
