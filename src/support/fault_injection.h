// Deterministic fault injection for the resource-governance subsystem.
//
// A FaultInjector attached to an AnalysisBudget forces synthetic budget
// exhaustion (BudgetCause::Injected) at randomly chosen cooperative
// probe points, with a seeded PRNG so every run is reproducible. The
// fault-injection property test runs the corpus under injection and
// asserts the degraded paths are sound: no crash, degraded parallel
// plans are a subset of the uninjected plans, and interpreter output is
// unchanged.
//
// Env configuration (read by analyzeProgram when no injector is passed
// programmatically):
//   PADFA_FAULT_RATE — fire probability per probe point, in [0, 1]
//   PADFA_FAULT_SEED — PRNG seed (default 1)
#pragma once

#include <cstdint>
#include <optional>

namespace padfa {

class FaultInjector {
 public:
  /// `rate` is the probability that any given probe point fires.
  FaultInjector(uint64_t seed, double rate);

  /// An injector configured from PADFA_FAULT_RATE / PADFA_FAULT_SEED, or
  /// nullopt when PADFA_FAULT_RATE is unset or zero.
  static std::optional<FaultInjector> fromEnv();

  /// Called at every budget probe point; true means "fail here".
  bool shouldFire();

  uint64_t probes() const { return probes_; }
  uint64_t fired() const { return fired_; }

 private:
  uint64_t state_;
  uint64_t threshold_;  // fire when next PRNG draw < threshold
  uint64_t probes_ = 0;
  uint64_t fired_ = 0;
};

}  // namespace padfa
