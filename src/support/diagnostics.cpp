#include "support/diagnostics.h"

#include <algorithm>
#include <tuple>

namespace padfa {

std::string_view diagSeverityName(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::Note: return "note";
    case DiagSeverity::Warning: return "warning";
    case DiagSeverity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::string out(diagSeverityName(severity));
  if (loc.valid()) out += " at " + loc.str();
  out += ": " + message;
  if (!id.empty()) out += " [" + id + "]";
  return out;
}

void DiagEngine::report(Diagnostic d) {
  if (d.severity == DiagSeverity::Warning &&
      (werror_ || (!werror_ids_.empty() && werror_ids_.count(d.id))))
    d.severity = DiagSeverity::Error;
  if (d.severity == DiagSeverity::Error) ++num_errors_;
  diags_.push_back(std::move(d));
}

size_t DiagEngine::countWithId(std::string_view id) const {
  size_t n = 0;
  for (const auto& d : diags_)
    if (d.id == id) ++n;
  return n;
}

std::vector<Diagnostic> DiagEngine::sorted() const {
  std::vector<Diagnostic> out = diags_;
  auto key = [](const Diagnostic& d) {
    // Errors before warnings before notes at the same location.
    int sev = d.severity == DiagSeverity::Error     ? 0
              : d.severity == DiagSeverity::Warning ? 1
                                                    : 2;
    return std::make_tuple(d.loc.line, d.loc.col, sev, d.id, d.message);
  };
  std::stable_sort(out.begin(), out.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     return key(a) < key(b);
                   });
  out.erase(std::unique(out.begin(), out.end(),
                        [&](const Diagnostic& a, const Diagnostic& b) {
                          return key(a) == key(b);
                        }),
            out.end());
  return out;
}

std::string DiagEngine::dump() const {
  std::string out;
  for (const auto& d : sorted()) {
    out += d.str();
    out += '\n';
  }
  return out;
}

std::string renderDiagnostics(const DiagEngine& diags,
                              const std::string& source,
                              const std::string& filename) {
  // Split the source once into line start offsets.
  std::vector<size_t> starts = {0};
  for (size_t i = 0; i < source.size(); ++i)
    if (source[i] == '\n') starts.push_back(i + 1);
  auto lineText = [&](uint32_t line) -> std::string {
    if (line == 0 || line > starts.size()) return {};
    size_t b = starts[line - 1];
    size_t e = source.find('\n', b);
    if (e == std::string::npos) e = source.size();
    return source.substr(b, e - b);
  };

  const std::string file = filename.empty() ? "<input>" : filename;
  std::string out;
  for (const auto& d : diags.sorted()) {
    out += file;
    if (d.loc.valid()) out += ":" + d.loc.str();
    out += ": ";
    out += diagSeverityName(d.severity);
    out += ": " + d.message;
    if (!d.id.empty()) out += " [" + d.id + "]";
    out += '\n';
    if (d.loc.valid()) {
      std::string text = lineText(d.loc.line);
      if (!text.empty()) {
        out += "    " + text + '\n';
        out += "    ";
        // Tabs keep their width so the caret stays aligned.
        for (uint32_t c = 1; c + 1 <= d.loc.col && c <= text.size(); ++c)
          out += text[c - 1] == '\t' ? '\t' : ' ';
        out += "^\n";
      }
    }
  }
  return out;
}

}  // namespace padfa
