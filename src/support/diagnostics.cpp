#include "support/diagnostics.h"

namespace padfa {

std::string Diagnostic::str() const {
  std::string out;
  switch (severity) {
    case DiagSeverity::Note: out = "note"; break;
    case DiagSeverity::Warning: out = "warning"; break;
    case DiagSeverity::Error: out = "error"; break;
  }
  if (loc.valid()) out += " at " + loc.str();
  out += ": " + message;
  return out;
}

std::string DiagEngine::dump() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.str();
    out += '\n';
  }
  return out;
}

}  // namespace padfa
