#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace padfa {

JsonValue JsonValue::of(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::of(double n) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.num_ = n;
  return v;
}

JsonValue JsonValue::of(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

bool JsonValue::asBool(bool dflt) const {
  return kind_ == Kind::Bool ? bool_ : dflt;
}

double JsonValue::asNumber(double dflt) const {
  return kind_ == Kind::Number ? num_ : dflt;
}

const std::string& JsonValue::asString() const {
  static const std::string empty;
  return kind_ == Kind::String ? str_ : empty;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  static const JsonValue null_value;
  for (const auto& [k, v] : obj_)
    if (k == key) return v;
  return null_value;
}

bool JsonValue::has(const std::string& key) const {
  for (const auto& [k, v] : obj_)
    if (k == key) return true;
  return false;
}

void JsonValue::set(std::string key, JsonValue v) {
  kind_ = Kind::Object;
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

void JsonValue::push(JsonValue v) {
  kind_ = Kind::Array;
  arr_.push_back(std::move(v));
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case Kind::Null: return "null";
    case Kind::Bool: return bool_ ? "true" : "false";
    case Kind::Number: {
      // Integers (the common protocol case) print without a fraction.
      if (num_ == std::floor(num_) && std::abs(num_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(num_));
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", num_);
      return buf;
    }
    case Kind::String: return "\"" + jsonEscape(str_) + "\"";
    case Kind::Array: {
      std::string out = "[";
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ",";
        out += arr_[i].dump();
      }
      return out + "]";
    }
    case Kind::Object: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ",";
        first = false;
        out += "\"" + jsonEscape(k) + "\":" + v.dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

// Recursive-descent parser over [p, end). Depth-bounded: the protocol
// never nests past a handful of levels, and a hostile request must not
// be able to blow the stack.
class Parser {
 public:
  Parser(const char* p, const char* end, std::string& err)
      : p_(p), end_(end), err_(err) {}

  bool parse(JsonValue& out) {
    skipWs();
    if (!parseValue(out, 0)) return false;
    skipWs();
    if (p_ != end_) return fail("trailing garbage after JSON value");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 32;

  bool fail(const std::string& msg) {
    err_ = msg;
    return false;
  }

  void skipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      ++p_;
  }

  bool literal(const char* lit) {
    const char* q = p_;
    while (*lit) {
      if (q == end_ || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p_ = q;
    return true;
  }

  bool parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{': return parseObject(out, depth);
      case '[': return parseArray(out, depth);
      case '"': {
        std::string s;
        if (!parseString(s)) return false;
        out = JsonValue::of(std::move(s));
        return true;
      }
      case 't':
        if (literal("true")) {
          out = JsonValue::of(true);
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (literal("false")) {
          out = JsonValue::of(false);
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (literal("null")) {
          out = JsonValue::makeNull();
          return true;
        }
        return fail("bad literal");
      default: return parseNumber(out);
    }
  }

  bool parseNumber(JsonValue& out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      digits |= std::isdigit(static_cast<unsigned char>(*p_)) != 0;
      ++p_;
    }
    if (!digits) return fail("bad number");
    std::string tok(start, p_);
    char* parse_end = nullptr;
    double v = std::strtod(tok.c_str(), &parse_end);
    if (parse_end != tok.c_str() + tok.size()) return fail("bad number");
    out = JsonValue::of(v);
    return true;
  }

  bool hex4(uint32_t& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (p_ == end_) return fail("truncated \\u escape");
      char c = *p_++;
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<uint32_t>(c - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  void appendUtf8(std::string& s, uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parseString(std::string& out) {
    ++p_;  // opening quote
    out.clear();
    while (true) {
      if (p_ == end_) return fail("unterminated string");
      char c = *p_++;
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) return fail("truncated escape");
      char e = *p_++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t cp = 0;
          if (!hex4(cp)) return false;
          appendUtf8(out, cp);
          break;
        }
        default: return fail("bad escape");
      }
    }
  }

  bool parseObject(JsonValue& out, int depth) {
    ++p_;  // '{'
    out = JsonValue::object();
    skipWs();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skipWs();
      if (p_ == end_ || *p_ != '"') return fail("expected object key");
      std::string key;
      if (!parseString(key)) return false;
      skipWs();
      if (p_ == end_ || *p_ != ':') return fail("expected ':'");
      ++p_;
      skipWs();
      JsonValue v;
      if (!parseValue(v, depth + 1)) return false;
      out.set(std::move(key), std::move(v));
      skipWs();
      if (p_ == end_) return fail("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(JsonValue& out, int depth) {
    ++p_;  // '['
    out = JsonValue::array();
    skipWs();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      skipWs();
      JsonValue v;
      if (!parseValue(v, depth + 1)) return false;
      out.push(std::move(v));
      skipWs();
      if (p_ == end_) return fail("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const char* p_;
  const char* end_;
  std::string& err_;
};

}  // namespace

bool parseJson(const std::string& text, JsonValue& out, std::string& err) {
  Parser p(text.data(), text.data() + text.size(), err);
  return p.parse(out);
}

}  // namespace padfa
