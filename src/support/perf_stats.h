// Process-wide performance counters for the memoization layer.
//
// Every cache in the engine (Presburger feasibility, predicate
// implies/simplify, interprocedural translated summaries) reports its
// hit/miss/insert traffic through one of the named CacheStats instances
// below so benches and tests can print and assert cache effectiveness.
// Counters are atomic (relaxed): they are telemetry, never control flow,
// so cross-thread ordering is irrelevant — only totals matter.
//
// Cache enablement is a process-wide switch: the PADFA_NO_CACHE
// environment variable (any non-empty value) disables every cache, and
// setCachesEnabled() overrides the environment programmatically (used by
// the cache-coherence test to compare cached vs uncached plans in one
// process). Caches are additionally bypassed per-call-site whenever a
// *governed* AnalysisBudget is installed (finite limits or a fault
// injector): budget charging is part of the observable degradation
// contract, and a cache hit that skips charge points would let a starved
// analysis dodge the exhaustion it is supposed to hit.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "support/json.h"

namespace padfa {

struct CacheStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> inserts{0};

  void hit() { hits.fetch_add(1, std::memory_order_relaxed); }
  void miss() { misses.fetch_add(1, std::memory_order_relaxed); }
  void insert() { inserts.fetch_add(1, std::memory_order_relaxed); }

  uint64_t lookups() const {
    return hits.load(std::memory_order_relaxed) +
           misses.load(std::memory_order_relaxed);
  }
  double hitRate() const {
    uint64_t n = lookups();
    return n ? static_cast<double>(hits.load(std::memory_order_relaxed)) /
                   static_cast<double>(n)
             : 0.0;
  }
  void reset() {
    hits.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
    inserts.store(0, std::memory_order_relaxed);
  }
};

/// Counters for the incremental (change-impact) compile path
/// (ipa/incremental.h). Totals accumulate across runs; last_dirty_size
/// is overwritten per run so the daemon's `status` response can report
/// how much of the program the most recent edit actually invalidated.
struct IncrementalCounters {
  std::atomic<uint64_t> runs{0};            ///< incremental compiles
  std::atomic<uint64_t> procs_analyzed{0};  ///< dirty procedures re-analyzed
  std::atomic<uint64_t> procs_replayed{0};  ///< procedures replayed from store
  std::atomic<uint64_t> fingerprint_hits{0};    ///< deep-fp probes, hit
  std::atomic<uint64_t> fingerprint_misses{0};  ///< deep-fp probes, miss
  std::atomic<uint64_t> last_dirty_size{0};     ///< dirty set of latest run

  void reset() {
    runs.store(0, std::memory_order_relaxed);
    procs_analyzed.store(0, std::memory_order_relaxed);
    procs_replayed.store(0, std::memory_order_relaxed);
    fingerprint_hits.store(0, std::memory_order_relaxed);
    fingerprint_misses.store(0, std::memory_order_relaxed);
    last_dirty_size.store(0, std::memory_order_relaxed);
  }
};

/// Counters for the value-range analysis (vra/vra.h) and its clients.
/// `proofs` counts provePred() queries, `proofs_discharged` the ones
/// resolved to a definite True/False; promotions/demotions are the plan
/// rewrites committed by the static runtime-test discharge pass and the
/// Doacross profitability guard.
struct VraCounters {
  std::atomic<uint64_t> analyses{0};   ///< RangeAnalysis fixpoints run
  std::atomic<uint64_t> widenings{0};  ///< loop-head widening applications
  std::atomic<uint64_t> proofs{0};     ///< provePred() queries
  std::atomic<uint64_t> proofs_discharged{0};  ///< ... resolved True/False
  std::atomic<uint64_t> promotions{0};   ///< RuntimeTest -> Parallel
  std::atomic<uint64_t> demotions{0};    ///< RuntimeTest -> Sequential
  std::atomic<uint64_t> doacross_demotions{0};  ///< Doacross cost guard

  void reset() {
    analyses.store(0, std::memory_order_relaxed);
    widenings.store(0, std::memory_order_relaxed);
    proofs.store(0, std::memory_order_relaxed);
    proofs_discharged.store(0, std::memory_order_relaxed);
    promotions.store(0, std::memory_order_relaxed);
    demotions.store(0, std::memory_order_relaxed);
    doacross_demotions.store(0, std::memory_order_relaxed);
  }
};

/// The process-wide counter set, one CacheStats per engine cache.
struct PerfStats {
  CacheStats feasibility;  ///< pb::System::feasible() memo
  CacheStats implies;      ///< Pred::implies pair memo
  CacheStats simplify;     ///< Pred::simplify memo
  CacheStats summary;      ///< translated callee-summary memo
  IncrementalCounters incremental;  ///< change-impact replay path
  VraCounters vra;                  ///< value-range analysis + clients

  static PerfStats& instance();

  void resetAll() {
    feasibility.reset();
    implies.reset();
    simplify.reset();
    summary.reset();
    incremental.reset();
    vra.reset();
  }

  /// One-line-per-cache human-readable dump for bench output.
  std::string report() const;
};

/// {"hits":h,"misses":m,"inserts":i,"hit_rate":r} for one counter set —
/// the shape the benches' BENCH_*.json files and the mfcd `status`
/// response share.
JsonValue cacheStatsToJson(const CacheStats& s);

/// Object keyed by cache name ("feasibility", "implies", "simplify",
/// "summary"), each a cacheStatsToJson() entry.
JsonValue perfStatsToJson(const PerfStats& stats);

/// {"runs":..,"procs_analyzed":..,"procs_replayed":..,
///  "fingerprint_hits":..,"fingerprint_misses":..,"last_dirty_size":..}
/// — the mfcd `status` response's "incremental" object.
JsonValue incrementalCountersToJson(const IncrementalCounters& c);

/// {"analyses":..,"widenings":..,"proofs":..,"proofs_discharged":..,
///  "promotions":..,"demotions":..,"doacross_demotions":..} — consumed
/// by bench/fig_vra.cpp.
JsonValue vraCountersToJson(const VraCounters& c);

/// Whether the memoization layer is active. Defaults to the environment
/// (PADFA_NO_CACHE unset/empty => enabled); a setCachesEnabled() call
/// takes precedence over the environment for the rest of the process.
bool cachesEnabled();
void setCachesEnabled(bool enabled);
/// Drop any setCachesEnabled() override, reverting to the environment.
void clearCachesEnabledOverride();

}  // namespace padfa
