// Hashing primitives for the persistent store and the serving layer.
//
// crc32: the IEEE 802.3 polynomial (reflected, 0xEDB88320), the checksum
// every snapshot record carries so torn writes and bit rot are detected
// on load instead of silently deserialized. contentHash64: FNV-1a over
// raw bytes, the renaming-*sensitive* identity of an MF source — store
// records for compiled plans are keyed by it, so an edited source can
// never alias a stale record. Neither is cryptographic; the store
// defends against corruption and staleness, not adversaries with write
// access to the store directory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace padfa {

/// CRC-32 (IEEE) of `data`. `seed` allows incremental use: pass a prior
/// return value to continue a running checksum.
uint32_t crc32(const void* data, size_t len, uint32_t seed = 0);
inline uint32_t crc32(std::string_view s, uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

/// 64-bit FNV-1a content hash.
uint64_t contentHash64(std::string_view s);

/// Fixed-width lowercase-hex rendering (16 digits) of a content hash,
/// for logs and JSON payloads.
std::string hashHex(uint64_t h);

}  // namespace padfa
