// Source locations for diagnostics in the MF mini-language frontend.
#pragma once

#include <cstdint>
#include <string>

namespace padfa {

/// A position in an MF source buffer (1-based line and column).
struct SourceLoc {
  uint32_t line = 0;
  uint32_t col = 0;

  bool valid() const { return line != 0; }
  std::string str() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

}  // namespace padfa
