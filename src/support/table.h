// Plain-text table rendering used by the benchmark harness to print the
// paper's tables with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace padfa {

/// A simple column-aligned ASCII table. Rows are vectors of cell strings;
/// the first addRow after construction is typically the header.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  void addSeparator();

  /// Render with single-space-padded columns and '|' separators.
  std::string render() const;

  size_t rowCount() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  size_t num_cols_;
  std::vector<Row> rows_;
};

/// Format a double with fixed precision (helper for table cells).
std::string fmtDouble(double v, int precision = 2);

/// Format a ratio as a percentage string like "42.3%".
std::string fmtPercent(double num, double den, int precision = 1);

}  // namespace padfa
