// Diagnostic collection for the frontend and analyses.
//
// All user-facing errors (parse errors, semantic errors, analysis
// limitations worth reporting) flow through a DiagEngine so library code
// never writes to stderr directly and tests can assert on diagnostics.
//
// Diagnostics carry an optional *stable id* (e.g. "padfa-oob") so tools
// and tests can match on the diagnostic kind instead of its message text,
// and so individual checkers can be promoted to errors (-Werror-style).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "support/source_loc.h"

namespace padfa {

enum class DiagSeverity { Note, Warning, Error };

std::string_view diagSeverityName(DiagSeverity s);

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Error;
  SourceLoc loc;
  std::string message;
  /// Stable identifier of the producing checker ("padfa-oob", ...), empty
  /// for ad-hoc frontend diagnostics.
  std::string id;

  std::string str() const;
};

/// Accumulates diagnostics; owned by the driver / test and passed by
/// reference into frontend phases.
class DiagEngine {
 public:
  void error(SourceLoc loc, std::string msg, std::string id = {}) {
    report({DiagSeverity::Error, loc, std::move(msg), std::move(id)});
  }
  void warning(SourceLoc loc, std::string msg, std::string id = {}) {
    report({DiagSeverity::Warning, loc, std::move(msg), std::move(id)});
  }
  void note(SourceLoc loc, std::string msg, std::string id = {}) {
    report({DiagSeverity::Note, loc, std::move(msg), std::move(id)});
  }

  /// Central entry: applies -Werror-style promotion before recording.
  void report(Diagnostic d);

  /// Promote warnings to errors. With an empty id set, every warning is
  /// promoted; otherwise only warnings whose id is in the set.
  void setWarningsAsErrors(bool on) { werror_ = on; }
  void setWarningsAsErrors(std::set<std::string> ids) {
    werror_ids_ = std::move(ids);
  }

  bool hasErrors() const { return num_errors_ > 0; }
  size_t errorCount() const { return num_errors_; }
  const std::vector<Diagnostic>& all() const { return diags_; }

  /// Number of diagnostics carrying the given stable id.
  size_t countWithId(std::string_view id) const;

  /// Diagnostics in stable presentation order: sorted by source location
  /// (unlocated first), then severity (errors first), then id/message;
  /// exact duplicates are dropped.
  std::vector<Diagnostic> sorted() const;

  /// All diagnostics joined by newlines — convenient for test failure
  /// text. Uses sorted() order.
  std::string dump() const;

 private:
  std::vector<Diagnostic> diags_;
  size_t num_errors_ = 0;
  bool werror_ = false;
  std::set<std::string> werror_ids_;
};

/// Render diagnostics with source-line and caret context:
///
///   lint.mf:12:7: warning: subscript is always out of bounds [padfa-oob]
///       a[i + 40] = 0.0;
///         ^
///
/// `source` is the buffer the SourceLocs refer to; `filename` prefixes
/// each line ("<input>" if empty). Diagnostics are rendered in sorted()
/// order.
std::string renderDiagnostics(const DiagEngine& diags,
                              const std::string& source,
                              const std::string& filename);

}  // namespace padfa
