// Diagnostic collection for the frontend and analyses.
//
// All user-facing errors (parse errors, semantic errors, analysis
// limitations worth reporting) flow through a DiagEngine so library code
// never writes to stderr directly and tests can assert on diagnostics.
#pragma once

#include <string>
#include <vector>

#include "support/source_loc.h"

namespace padfa {

enum class DiagSeverity { Note, Warning, Error };

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Error;
  SourceLoc loc;
  std::string message;

  std::string str() const;
};

/// Accumulates diagnostics; owned by the driver / test and passed by
/// reference into frontend phases.
class DiagEngine {
 public:
  void error(SourceLoc loc, std::string msg) {
    diags_.push_back({DiagSeverity::Error, loc, std::move(msg)});
    ++num_errors_;
  }
  void warning(SourceLoc loc, std::string msg) {
    diags_.push_back({DiagSeverity::Warning, loc, std::move(msg)});
  }
  void note(SourceLoc loc, std::string msg) {
    diags_.push_back({DiagSeverity::Note, loc, std::move(msg)});
  }

  bool hasErrors() const { return num_errors_ > 0; }
  size_t errorCount() const { return num_errors_; }
  const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics joined by newlines — convenient for test failure text.
  std::string dump() const;

 private:
  std::vector<Diagnostic> diags_;
  size_t num_errors_ = 0;
};

}  // namespace padfa
