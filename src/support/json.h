// Minimal JSON value model + parser/writer for the mfcd wire protocol.
//
// The daemon speaks newline-delimited JSON over a unix socket; requests
// and responses are small, flat-ish objects, so this is a deliberately
// tiny recursive-descent implementation rather than a dependency. It is
// strict where the protocol needs it to be: rejects trailing garbage,
// malformed escapes, and unterminated structures (a truncated request
// must produce a protocol error, never a partial parse), bounds nesting
// depth, and round-trips arbitrary byte content through string escapes
// (including embedded newlines — the reason one request fits one line).
// Numbers are held as double; the protocol only carries small integers
// and ratios, both exact in double.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace padfa {

class JsonValue {
 public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue of(bool b);
  static JsonValue of(double n);
  static JsonValue of(int64_t n) { return of(static_cast<double>(n)); }
  static JsonValue of(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }

  // Typed accessors with defaults — protocol fields are all optional.
  bool asBool(bool dflt = false) const;
  double asNumber(double dflt = 0) const;
  const std::string& asString() const;  // empty string when not a String

  // Object access. get() returns null-kind value for absent keys.
  const JsonValue& get(const std::string& key) const;
  bool has(const std::string& key) const;
  void set(std::string key, JsonValue v);

  // Array access.
  const std::vector<JsonValue>& items() const { return arr_; }
  void push(JsonValue v);

  /// Serialize to a single line (no embedded raw newlines, object keys
  /// in insertion order — deterministic output for golden tests).
  std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  // Insertion-ordered object representation (small N; linear lookup).
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parse a complete JSON document from `text`. Returns false and fills
/// `err` on any syntax error, depth overflow, or trailing garbage.
bool parseJson(const std::string& text, JsonValue& out, std::string& err);

/// JSON string-escape `s` (without the surrounding quotes).
std::string jsonEscape(const std::string& s);

}  // namespace padfa
