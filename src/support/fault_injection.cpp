#include "support/fault_injection.h"

#include <cstdlib>

namespace padfa {

namespace {

// splitmix64: tiny, well-distributed, and stateless per step.
uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed, double rate) : state_(seed) {
  if (rate <= 0) {
    threshold_ = 0;
  } else if (rate >= 1) {
    threshold_ = UINT64_MAX;
  } else {
    threshold_ = static_cast<uint64_t>(
        rate * 18446744073709551616.0 /* 2^64 */);
  }
  // Decorrelate trivially related seeds (0, 1, 2, ...).
  splitmix64(state_);
}

std::optional<FaultInjector> FaultInjector::fromEnv() {
  const char* rate_s = std::getenv("PADFA_FAULT_RATE");
  if (!rate_s || !*rate_s) return std::nullopt;
  double rate = std::strtod(rate_s, nullptr);
  if (rate <= 0) return std::nullopt;
  uint64_t seed = 1;
  if (const char* seed_s = std::getenv("PADFA_FAULT_SEED"))
    if (*seed_s) seed = std::strtoull(seed_s, nullptr, 10);
  return FaultInjector(seed, rate);
}

bool FaultInjector::shouldFire() {
  ++probes_;
  if (threshold_ == 0) return false;
  bool fire = splitmix64(state_) < threshold_;
  if (fire) ++fired_;
  return fire;
}

}  // namespace padfa
