#include "support/budget.h"

#include <chrono>
#include <cstdlib>

#include "support/fault_injection.h"

namespace padfa {

namespace {

thread_local AnalysisBudget* g_current_budget = nullptr;

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t envU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

BudgetLimits BudgetLimits::defaults() {
  BudgetLimits l;
  // Inert on any real program; only a stack-overflow backstop is armed.
  l.max_recursion_depth = 4096;
  return l;
}

BudgetLimits BudgetLimits::fromEnv(const BudgetLimits& base) {
  BudgetLimits l = base;
  if (const char* ms = std::getenv("PADFA_BUDGET_DEADLINE_MS"))
    if (*ms) l.deadline_seconds = std::strtod(ms, nullptr) / 1000.0;
  l.max_fm_steps = envU64("PADFA_BUDGET_FM_STEPS", l.max_fm_steps);
  l.max_loop_fm_steps =
      envU64("PADFA_BUDGET_LOOP_FM_STEPS", l.max_loop_fm_steps);
  l.max_constraints = envU64("PADFA_BUDGET_CONSTRAINTS", l.max_constraints);
  l.max_pieces = envU64("PADFA_BUDGET_PIECES", l.max_pieces);
  l.max_recursion_depth = static_cast<uint32_t>(
      envU64("PADFA_BUDGET_RECURSION", l.max_recursion_depth));
  return l;
}

bool BudgetLimits::governed() const {
  if (deadline_seconds > 0 || max_fm_steps != 0 || max_loop_fm_steps != 0 ||
      max_constraints != 0 || max_pieces != 0)
    return true;
  const char* fault = std::getenv("PADFA_FAULT_RATE");
  return fault && *fault;
}

const char* budgetCauseName(BudgetCause cause) {
  switch (cause) {
    case BudgetCause::Deadline: return "deadline";
    case BudgetCause::FmSteps: return "fm-steps";
    case BudgetCause::LoopFmSteps: return "loop-fm-steps";
    case BudgetCause::Constraints: return "constraints";
    case BudgetCause::Pieces: return "pieces";
    case BudgetCause::Recursion: return "recursion";
    case BudgetCause::Injected: return "injected";
  }
  return "?";
}

BudgetExceeded::BudgetExceeded(BudgetCause cause)
    : cause_(cause),
      message_(std::string("analysis budget exhausted: ") +
               budgetCauseName(cause)) {}

AnalysisBudget::AnalysisBudget(const BudgetLimits& limits,
                               FaultInjector* injector)
    : limits_(limits), injector_(injector) {
  if (limits_.deadline_seconds > 0)
    deadline_at_ = monotonicSeconds() + limits_.deadline_seconds;
}

AnalysisBudget* AnalysisBudget::current() { return g_current_budget; }

void AnalysisBudget::beginLoop() {
  loop_fm_steps_.store(0, std::memory_order_relaxed);
}

void AnalysisBudget::blow(BudgetCause cause) {
  // Global dimensions are sticky: the remaining pipeline should degrade
  // immediately at its next charge point rather than re-pay partial work
  // against a budget that cannot recover. Per-loop slices reset at the
  // next beginLoop(); injected faults are transient by design.
  if (cause != BudgetCause::LoopFmSteps && cause != BudgetCause::Injected &&
      cause != BudgetCause::Recursion) {
    cause_.store(cause, std::memory_order_relaxed);
    exhausted_.store(true, std::memory_order_relaxed);
  }
  throw BudgetExceeded(cause);
}

void AnalysisBudget::probe() {
  if (injector_ && injector_->shouldFire()) blow(BudgetCause::Injected);
  // Deadline checks are subsampled: the clock read is ~20ns, charge
  // points can run millions of times.
  if (deadline_at_ > 0 &&
      ((probe_tick_.fetch_add(1, std::memory_order_relaxed) + 1) & 0xFF) ==
          0 &&
      monotonicSeconds() > deadline_at_)
    blow(BudgetCause::Deadline);
}

void AnalysisBudget::chargeFmStep(uint64_t constraints) {
  if (exhausted_.load(std::memory_order_relaxed))
    throw BudgetExceeded(cause_.load(std::memory_order_relaxed));
  uint64_t fm = fm_steps_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t loop_fm = loop_fm_steps_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t cons =
      constraints_.fetch_add(constraints, std::memory_order_relaxed) +
      constraints;
  if (limits_.max_fm_steps && fm > limits_.max_fm_steps)
    blow(BudgetCause::FmSteps);
  if (limits_.max_loop_fm_steps && loop_fm > limits_.max_loop_fm_steps)
    blow(BudgetCause::LoopFmSteps);
  if (limits_.max_constraints && cons > limits_.max_constraints)
    blow(BudgetCause::Constraints);
  probe();
}

void AnalysisBudget::chargePieces(uint64_t pieces) {
  if (exhausted_.load(std::memory_order_relaxed))
    throw BudgetExceeded(cause_.load(std::memory_order_relaxed));
  uint64_t p = pieces_.fetch_add(pieces, std::memory_order_relaxed) + pieces;
  if (limits_.max_pieces && p > limits_.max_pieces)
    blow(BudgetCause::Pieces);
  probe();
}

void AnalysisBudget::enterRecursion() {
  if (exhausted_.load(std::memory_order_relaxed))
    throw BudgetExceeded(cause_.load(std::memory_order_relaxed));
  // Check before incrementing: a throwing enterRecursion() means the
  // guard's constructor never completes, so its destructor (and the
  // matching decrement) would not run.
  if (limits_.max_recursion_depth &&
      depth_.load(std::memory_order_relaxed) + 1 > limits_.max_recursion_depth)
    blow(BudgetCause::Recursion);
  depth_.fetch_add(1, std::memory_order_relaxed);
}

void AnalysisBudget::leaveRecursion() {
  if (depth_.load(std::memory_order_relaxed) > 0)
    depth_.fetch_sub(1, std::memory_order_relaxed);
}

BudgetScope::BudgetScope(AnalysisBudget& b) : prev_(g_current_budget) {
  g_current_budget = &b;
}

BudgetScope::~BudgetScope() { g_current_budget = prev_; }

}  // namespace padfa
