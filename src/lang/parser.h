// Recursive-descent parser for MF.
#pragma once

#include <memory>
#include <string_view>

#include "lang/ast.h"
#include "lang/token.h"
#include "support/diagnostics.h"

namespace padfa {

/// Parse a full MF source buffer into a Program. Returns nullptr if any
/// parse error was reported.
std::unique_ptr<Program> parseProgram(std::string_view source,
                                      DiagEngine& diags);

}  // namespace padfa
