// Token definitions for the MF mini-language.
//
// MF ("mini-Fortran") is the input language of this reproduction: a small
// structured language with the features the paper's analysis cares about —
// counted loops, conditionals, multi-dimensional arrays, call statements —
// and nothing else (no pointers, no unstructured control flow).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_loc.h"

namespace padfa {

enum class Tok : uint8_t {
  Eof,
  Ident,
  IntLit,
  RealLit,
  // Keywords.
  KwProc,
  KwInt,
  KwReal,
  KwIf,
  KwElse,
  KwFor,
  KwTo,
  KwStep,
  KwReturn,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Assign,  // =
  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  AmpAmp,
  PipePipe,
  Bang,
};

struct Token {
  Tok kind = Tok::Eof;
  SourceLoc loc;
  std::string text;     // identifier spelling
  int64_t int_value = 0;
  double real_value = 0;
};

std::string_view tokName(Tok t);

}  // namespace padfa
