// Abstract syntax tree for MF programs.
//
// Ownership: the Program owns all procedures; procedures own their body
// blocks; blocks own declarations and statements; statements own nested
// blocks and expressions. Cross-references installed by Sema (VarRef::decl,
// CallStmt::callee_proc) are non-owning.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/interner.h"
#include "support/source_loc.h"

namespace padfa {

enum class Type : uint8_t { Int, Real };

std::string_view typeName(Type t);

// ---------------------------------------------------------------- Expr --

enum class ExprKind : uint8_t {
  IntLit,
  RealLit,
  VarRef,
  ArrayRef,
  Unary,
  Binary,
  Intrinsic,
};

enum class UnOp : uint8_t { Neg, Not };

enum class BinOp : uint8_t {
  Add, Sub, Mul, Div, Rem,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
};

bool isComparison(BinOp op);
bool isLogical(BinOp op);
std::string_view binOpSpelling(BinOp op);

enum class Intrinsic : uint8_t {
  Min,    // min(a, b)
  Max,    // max(a, b)
  Abs,    // abs(a)
  Sqrt,   // sqrt(a) -> real
  Noise,  // noise(i) -> deterministic pseudo-random real in [0,1)
  INoise, // inoise(i, m) -> deterministic pseudo-random int in [0,m)
};

struct VarDecl;

struct Expr {
  ExprKind kind;
  Type type = Type::Int;  // filled by Sema
  SourceLoc loc;

  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
};
using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr final : Expr {
  int64_t value;
  explicit IntLitExpr(int64_t v) : Expr(ExprKind::IntLit), value(v) {}
};

struct RealLitExpr final : Expr {
  double value;
  explicit RealLitExpr(double v) : Expr(ExprKind::RealLit), value(v) {}
};

struct VarRefExpr final : Expr {
  Symbol name;
  VarDecl* decl = nullptr;  // set by Sema
  explicit VarRefExpr(Symbol n) : Expr(ExprKind::VarRef), name(n) {}
};

struct ArrayRefExpr final : Expr {
  Symbol name;
  VarDecl* decl = nullptr;  // set by Sema
  std::vector<ExprPtr> indices;
  explicit ArrayRefExpr(Symbol n) : Expr(ExprKind::ArrayRef), name(n) {}
};

struct UnaryExpr final : Expr {
  UnOp op;
  ExprPtr operand;
  UnaryExpr(UnOp o, ExprPtr e)
      : Expr(ExprKind::Unary), op(o), operand(std::move(e)) {}
};

struct BinaryExpr final : Expr {
  BinOp op;
  ExprPtr lhs, rhs;
  BinaryExpr(BinOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::Binary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
};

struct IntrinsicExpr final : Expr {
  Intrinsic fn;
  std::vector<ExprPtr> args;
  explicit IntrinsicExpr(Intrinsic f) : Expr(ExprKind::Intrinsic), fn(f) {}
};

// ---------------------------------------------------------------- Decl --

struct VarDecl {
  Type elem_type = Type::Int;
  Symbol name;
  SourceLoc loc;
  std::vector<ExprPtr> dims;  // empty => scalar
  ExprPtr init;               // optional (scalars only)
  bool is_param = false;
  bool is_loop_index = false;
  /// Unique id within the enclosing procedure; assigned by Sema.
  uint32_t local_id = 0;
  /// Unique id across the whole program; assigned by Sema. Cache keys
  /// derived from expressions are qualified with this id so structurally
  /// equal expressions over *different* declarations (e.g. a local `n`
  /// in two procedures, where local_id collides) never share an entry.
  uint32_t uid = 0;

  bool isArray() const { return !dims.empty(); }
  size_t rank() const { return dims.size(); }
};
using VarDeclPtr = std::unique_ptr<VarDecl>;

// ---------------------------------------------------------------- Stmt --

enum class StmtKind : uint8_t { Assign, If, For, Call, Return, Block };

struct Stmt {
  StmtKind kind;
  SourceLoc loc;
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
};
using StmtPtr = std::unique_ptr<Stmt>;

/// A block. Declarations are HOISTED: regardless of where a declaration
/// appears textually inside the block, it is allocated (and its
/// initializer evaluated) at block entry, before any statement runs.
/// Parser, sema, interpreter, and printer all share this rule.
struct BlockStmt final : Stmt {
  std::vector<VarDeclPtr> decls;
  std::vector<StmtPtr> stmts;
  BlockStmt() : Stmt(StmtKind::Block) {}
};
using BlockPtr = std::unique_ptr<BlockStmt>;

struct AssignStmt final : Stmt {
  ExprPtr target;  // VarRefExpr or ArrayRefExpr
  ExprPtr value;
  AssignStmt() : Stmt(StmtKind::Assign) {}
};

struct IfStmt final : Stmt {
  ExprPtr cond;
  BlockPtr then_block;
  BlockPtr else_block;  // may be null
  IfStmt() : Stmt(StmtKind::If) {}
};

struct ForStmt final : Stmt {
  Symbol index_name;
  VarDecl* index_decl = nullptr;  // owned by the loop body block (Sema)
  ExprPtr lower, upper;           // inclusive bounds
  ExprPtr step;                   // may be null => 1
  BlockPtr body;
  /// Stable loop identifier "proc/L<line>", assigned by Sema.
  std::string loop_id;
  ForStmt() : Stmt(StmtKind::For) {}
};

struct ProcDecl;

struct CallStmt final : Stmt {
  Symbol callee;
  ProcDecl* callee_proc = nullptr;  // set by Sema (null for builtin `sink`)
  std::vector<ExprPtr> args;
  bool is_sink = false;  // builtin checksum sink
  CallStmt() : Stmt(StmtKind::Call) {}
};

struct ReturnStmt final : Stmt {
  ReturnStmt() : Stmt(StmtKind::Return) {}
};

// ---------------------------------------------------------------- Proc --

struct ProcDecl {
  Symbol name;
  SourceLoc loc;
  std::vector<VarDeclPtr> params;
  BlockPtr body;
  /// Loop-index VarDecls synthesized by Sema (MF loop indices are
  /// implicitly declared ints scoped to the loop).
  std::vector<VarDeclPtr> synthesized;
  /// All VarDecls of the procedure (params + locals + loop indices) in
  /// local_id order; populated by Sema. Non-owning.
  std::vector<VarDecl*> all_vars;
};
using ProcPtr = std::unique_ptr<ProcDecl>;

struct Program {
  Interner interner;
  std::vector<ProcPtr> procs;

  ProcDecl* findProc(std::string_view name);
  const ProcDecl* findProc(std::string_view name) const;
};

/// Render an expression back to MF-ish source (for reports and run-time
/// test display).
std::string exprToString(const Expr& e, const Interner& interner);

/// Deep-copy an expression tree (decl cross-references are preserved).
ExprPtr cloneExpr(const Expr& e);

/// Deep-copy with substitution: occurrences of VarRefs whose decl appears
/// in `subst` are replaced by clones of the mapped expression. Used to
/// translate predicates across call boundaries (formal -> actual).
ExprPtr cloneExprSubst(
    const Expr& e,
    const std::function<const Expr*(const VarDecl*)>& subst);

/// Collect all VarDecls referenced anywhere in the expression.
void collectVars(const Expr& e, std::vector<const VarDecl*>& out);

}  // namespace padfa
