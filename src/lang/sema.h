// Semantic analysis for MF: name resolution, type checking, loop-index
// synthesis, call resolution, and call-graph validation (no recursion).
#pragma once

#include "lang/ast.h"
#include "support/diagnostics.h"

namespace padfa {

/// Run semantic analysis in place. Returns true on success. On success:
///  * every VarRef/ArrayRef has a resolved `decl`,
///  * every CallStmt has `callee_proc` (or `is_sink`),
///  * every expression has a `type`,
///  * every ForStmt has `index_decl` and a stable `loop_id`,
///  * ProcDecl::all_vars lists every variable in local_id order,
///  * the call graph is acyclic.
bool analyze(Program& program, DiagEngine& diags);

/// Procedures in reverse topological (callee-before-caller) order.
/// Precondition: analyze() succeeded.
std::vector<ProcDecl*> bottomUpProcOrder(Program& program);

}  // namespace padfa
