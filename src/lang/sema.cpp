#include "lang/sema.h"

#include <map>
#include <set>
#include <vector>

namespace padfa {

namespace {

class Sema {
 public:
  Sema(Program& program, DiagEngine& diags)
      : program_(program), diags_(diags) {}

  bool run() {
    // Register procedures first so calls can be resolved in any order.
    for (auto& p : program_.procs) {
      if (procs_.count(p->name)) {
        diags_.error(p->loc, "duplicate procedure '" +
                                 std::string(name(p->name)) + "'");
      }
      procs_[p->name] = p.get();
    }
    for (auto& p : program_.procs) checkProc(*p);
    if (!diags_.hasErrors()) checkCallGraph();
    return !diags_.hasErrors();
  }

 private:
  std::string_view name(Symbol s) const { return program_.interner.str(s); }

  void checkProc(ProcDecl& proc) {
    cur_proc_ = &proc;
    next_local_id_ = 0;
    proc.all_vars.clear();
    scopes_.clear();
    scopes_.emplace_back();
    // Declare all parameters first: array dimension expressions may
    // reference any parameter, including ones declared later in the list
    // (Fortran-style assumed-shape arrays).
    for (auto& param : proc.params) declare(param.get());
    for (auto& param : proc.params) {
      for (auto& dim : param->dims) {
        checkExpr(*dim);
        requireInt(*dim, "array dimension");
      }
      if (param->init) {
        diags_.error(param->loc, "parameters cannot have initializers");
      }
    }
    checkBlock(*proc.body, /*new_scope=*/false);
    scopes_.pop_back();
    cur_proc_ = nullptr;
  }

  void declare(VarDecl* d) {
    // Same-scope redeclaration is an error; shadowing an *enclosing*
    // scope's binding is legal (innermost wins) and left to MF-lint's
    // padfa-shadow checker to flag.
    if (scopes_.back().count(d->name)) {
      diags_.error(d->loc, "redeclaration of '" +
                               std::string(name(d->name)) +
                               "' in the same scope");
      return;
    }
    d->local_id = next_local_id_++;
    d->uid = next_uid_++;  // program-wide; never reset between procs
    scopes_.back()[d->name] = d;
    cur_proc_->all_vars.push_back(d);
  }

  VarDecl* lookup(Symbol s) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(s);
      if (f != it->end()) return f->second;
    }
    return nullptr;
  }

  void checkBlock(BlockStmt& block, bool new_scope = true) {
    if (new_scope) scopes_.emplace_back();
    for (auto& d : block.decls) {
      for (auto& dim : d->dims) {
        checkExpr(*dim);
        requireInt(*dim, "array dimension");
      }
      if (d->init) {
        checkExpr(*d->init);
        if (d->isArray()) {
          diags_.error(d->loc, "array declarations cannot have initializers");
        } else if (d->elem_type == Type::Int && d->init->type == Type::Real) {
          diags_.error(d->loc, "cannot initialize int from real");
        }
      }
      declare(d.get());
    }
    for (auto& s : block.stmts) checkStmt(*s);
    if (new_scope) scopes_.pop_back();
  }

  void checkStmt(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Assign: checkAssign(static_cast<AssignStmt&>(stmt)); break;
      case StmtKind::If: {
        auto& s = static_cast<IfStmt&>(stmt);
        checkExpr(*s.cond);
        requireInt(*s.cond, "if condition");
        checkBlock(*s.then_block);
        if (s.else_block) checkBlock(*s.else_block);
        break;
      }
      case StmtKind::For: checkFor(static_cast<ForStmt&>(stmt)); break;
      case StmtKind::Call: checkCall(static_cast<CallStmt&>(stmt)); break;
      case StmtKind::Return: break;
      case StmtKind::Block:
        checkBlock(static_cast<BlockStmt&>(stmt));
        break;
    }
  }

  void checkAssign(AssignStmt& s) {
    checkExpr(*s.value);
    if (s.target->kind == ExprKind::VarRef) {
      auto& ref = static_cast<VarRefExpr&>(*s.target);
      VarDecl* d = lookup(ref.name);
      if (!d) {
        diags_.error(ref.loc,
                     "undeclared variable '" + std::string(name(ref.name)) + "'");
        return;
      }
      if (d->isArray()) {
        diags_.error(ref.loc, "cannot assign to whole array '" +
                                  std::string(name(ref.name)) + "'");
        return;
      }
      if (d->is_loop_index) {
        diags_.error(ref.loc, "cannot assign to loop index '" +
                                  std::string(name(ref.name)) + "'");
        return;
      }
      ref.decl = d;
      ref.type = d->elem_type;
    } else {
      checkExpr(*s.target);  // resolves ArrayRef
    }
    if (s.target->type == Type::Int && s.value->type == Type::Real) {
      diags_.error(s.loc, "cannot assign real value to int target");
    }
  }

  void checkFor(ForStmt& s) {
    checkExpr(*s.lower);
    requireInt(*s.lower, "loop lower bound");
    checkExpr(*s.upper);
    requireInt(*s.upper, "loop upper bound");
    if (s.step) {
      checkExpr(*s.step);
      requireInt(*s.step, "loop step");
    }
    auto idx = std::make_unique<VarDecl>();
    idx->elem_type = Type::Int;
    idx->name = s.index_name;
    idx->loc = s.loc;
    idx->is_loop_index = true;
    s.index_decl = idx.get();
    s.loop_id = std::string(name(cur_proc_->name)) + "/L" +
                std::to_string(s.loc.line);
    scopes_.emplace_back();
    declare(idx.get());
    cur_proc_->synthesized.push_back(std::move(idx));
    checkBlock(*s.body, /*new_scope=*/false);
    scopes_.pop_back();
  }

  void checkCall(CallStmt& s) {
    if (name(s.callee) == "sink") {
      s.is_sink = true;
      if (s.args.size() != 1) {
        diags_.error(s.loc, "sink() takes exactly one scalar argument");
        return;
      }
      checkExpr(*s.args[0]);
      return;
    }
    auto it = procs_.find(s.callee);
    if (it == procs_.end()) {
      diags_.error(s.loc,
                   "call to undeclared procedure '" +
                       std::string(name(s.callee)) + "'");
      return;
    }
    s.callee_proc = it->second;
    const auto& params = s.callee_proc->params;
    if (s.args.size() != params.size()) {
      diags_.error(s.loc, "procedure '" + std::string(name(s.callee)) +
                              "' expects " + std::to_string(params.size()) +
                              " argument(s), got " +
                              std::to_string(s.args.size()));
      return;
    }
    for (size_t i = 0; i < s.args.size(); ++i) {
      Expr& arg = *s.args[i];
      const VarDecl& param = *params[i];
      if (param.isArray()) {
        // Must be a bare array name (whole-array pass by reference).
        if (arg.kind != ExprKind::VarRef) {
          diags_.error(arg.loc, "argument for array parameter '" +
                                    std::string(name(param.name)) +
                                    "' must be a whole array");
          continue;
        }
        auto& ref = static_cast<VarRefExpr&>(arg);
        VarDecl* d = lookup(ref.name);
        if (!d) {
          diags_.error(arg.loc, "undeclared variable '" +
                                    std::string(name(ref.name)) + "'");
          continue;
        }
        ref.decl = d;
        if (!d->isArray()) {
          diags_.error(arg.loc, "scalar passed where array expected");
          continue;
        }
        if (d->elem_type != param.elem_type) {
          diags_.error(arg.loc, "array element type mismatch in call");
        }
        // Rank may differ (reshape/delinearization across the call is
        // handled by the analysis); sizes are checked at run time.
        ref.type = d->elem_type;
      } else {
        checkExpr(arg);
        if (arg.kind == ExprKind::VarRef) {
          auto& ref = static_cast<VarRefExpr&>(arg);
          if (ref.decl && ref.decl->isArray()) {
            diags_.error(arg.loc, "array passed where scalar expected");
            continue;
          }
        }
        if (param.elem_type == Type::Int && arg.type == Type::Real) {
          diags_.error(arg.loc, "real argument for int parameter");
        }
      }
    }
  }

  void checkExpr(Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: e.type = Type::Int; break;
      case ExprKind::RealLit: e.type = Type::Real; break;
      case ExprKind::VarRef: {
        auto& ref = static_cast<VarRefExpr&>(e);
        VarDecl* d = lookup(ref.name);
        if (!d) {
          diags_.error(e.loc, "undeclared variable '" +
                                  std::string(name(ref.name)) + "'");
          return;
        }
        if (d->isArray()) {
          diags_.error(e.loc, "whole array '" + std::string(name(ref.name)) +
                                  "' used in expression (subscript it, or "
                                  "pass it as a call argument)");
          return;
        }
        ref.decl = d;
        e.type = d->elem_type;
        break;
      }
      case ExprKind::ArrayRef: {
        auto& ref = static_cast<ArrayRefExpr&>(e);
        VarDecl* d = lookup(ref.name);
        if (!d) {
          diags_.error(e.loc, "undeclared variable '" +
                                  std::string(name(ref.name)) + "'");
          return;
        }
        if (!d->isArray()) {
          diags_.error(e.loc, "subscripting scalar '" +
                                  std::string(name(ref.name)) + "'");
          return;
        }
        if (ref.indices.size() != d->rank()) {
          diags_.error(e.loc, "array '" + std::string(name(ref.name)) +
                                  "' has rank " + std::to_string(d->rank()) +
                                  ", subscripted with " +
                                  std::to_string(ref.indices.size()) +
                                  " indices");
          return;
        }
        for (auto& idx : ref.indices) {
          checkExpr(*idx);
          requireInt(*idx, "array subscript");
        }
        ref.decl = d;
        e.type = d->elem_type;
        break;
      }
      case ExprKind::Unary: {
        auto& u = static_cast<UnaryExpr&>(e);
        checkExpr(*u.operand);
        if (u.op == UnOp::Not) {
          requireInt(*u.operand, "operand of '!'");
          e.type = Type::Int;
        } else {
          e.type = u.operand->type;
        }
        break;
      }
      case ExprKind::Binary: {
        auto& b = static_cast<BinaryExpr&>(e);
        checkExpr(*b.lhs);
        checkExpr(*b.rhs);
        if (isLogical(b.op)) {
          requireInt(*b.lhs, "logical operand");
          requireInt(*b.rhs, "logical operand");
          e.type = Type::Int;
        } else if (isComparison(b.op)) {
          e.type = Type::Int;
        } else if (b.op == BinOp::Rem) {
          requireInt(*b.lhs, "'%' operand");
          requireInt(*b.rhs, "'%' operand");
          e.type = Type::Int;
        } else {
          e.type = (b.lhs->type == Type::Real || b.rhs->type == Type::Real)
                       ? Type::Real
                       : Type::Int;
        }
        break;
      }
      case ExprKind::Intrinsic: {
        auto& c = static_cast<IntrinsicExpr&>(e);
        for (auto& a : c.args) checkExpr(*a);
        auto arity = [&](size_t n) {
          if (c.args.size() != n)
            diags_.error(e.loc, "intrinsic takes " + std::to_string(n) +
                                    " argument(s)");
          return c.args.size() == n;
        };
        switch (c.fn) {
          case Intrinsic::Min:
          case Intrinsic::Max:
            if (arity(2))
              e.type = (c.args[0]->type == Type::Real ||
                        c.args[1]->type == Type::Real)
                           ? Type::Real
                           : Type::Int;
            break;
          case Intrinsic::Abs:
            if (arity(1)) e.type = c.args[0]->type;
            break;
          case Intrinsic::Sqrt:
            if (arity(1)) e.type = Type::Real;
            break;
          case Intrinsic::Noise:
            if (arity(1)) {
              requireInt(*c.args[0], "noise() argument");
              e.type = Type::Real;
            }
            break;
          case Intrinsic::INoise:
            if (arity(2)) {
              requireInt(*c.args[0], "inoise() argument");
              requireInt(*c.args[1], "inoise() argument");
              e.type = Type::Int;
            }
            break;
        }
        break;
      }
    }
  }

  void requireInt(const Expr& e, std::string_view what) {
    if (e.type != Type::Int)
      diags_.error(e.loc, std::string(what) + " must have type int");
  }

  void checkCallGraph() {
    // DFS for cycles over resolved call edges.
    enum class Mark { White, Gray, Black };
    std::map<const ProcDecl*, Mark> mark;
    std::vector<std::pair<const ProcDecl*, size_t>> stack;
    std::map<const ProcDecl*, std::vector<const ProcDecl*>> edges;
    for (auto& p : program_.procs) {
      std::vector<const ProcDecl*>& out = edges[p.get()];
      collectCalls(*p->body, out);
    }
    for (auto& p : program_.procs) {
      if (mark[p.get()] != Mark::White) continue;
      // Iterative DFS.
      stack.push_back({p.get(), 0});
      mark[p.get()] = Mark::Gray;
      while (!stack.empty()) {
        auto& [node, idx] = stack.back();
        auto& outs = edges[node];
        if (idx < outs.size()) {
          const ProcDecl* next = outs[idx++];
          if (mark[next] == Mark::Gray) {
            diags_.error(next->loc,
                         "recursive call cycle involving procedure '" +
                             std::string(name(next->name)) +
                             "' (MF forbids recursion)");
            return;
          }
          if (mark[next] == Mark::White) {
            mark[next] = Mark::Gray;
            stack.push_back({next, 0});
          }
        } else {
          mark[node] = Mark::Black;
          stack.pop_back();
        }
      }
    }
  }

  void collectCalls(const BlockStmt& block,
                    std::vector<const ProcDecl*>& out) {
    for (const auto& s : block.stmts) {
      switch (s->kind) {
        case StmtKind::Call: {
          const auto& c = static_cast<const CallStmt&>(*s);
          if (c.callee_proc) out.push_back(c.callee_proc);
          break;
        }
        case StmtKind::If: {
          const auto& i = static_cast<const IfStmt&>(*s);
          collectCalls(*i.then_block, out);
          if (i.else_block) collectCalls(*i.else_block, out);
          break;
        }
        case StmtKind::For:
          collectCalls(*static_cast<const ForStmt&>(*s).body, out);
          break;
        case StmtKind::Block:
          collectCalls(static_cast<const BlockStmt&>(*s), out);
          break;
        default:
          break;
      }
    }
  }

  Program& program_;
  DiagEngine& diags_;
  std::map<Symbol, ProcDecl*> procs_;
  std::vector<std::map<Symbol, VarDecl*>> scopes_;
  ProcDecl* cur_proc_ = nullptr;
  uint32_t next_local_id_ = 0;
  uint32_t next_uid_ = 1;  // 0 stays "never declared"
};

void collectCallsOf(const BlockStmt& block, std::set<const ProcDecl*>& out) {
  for (const auto& s : block.stmts) {
    switch (s->kind) {
      case StmtKind::Call: {
        const auto& c = static_cast<const CallStmt&>(*s);
        if (c.callee_proc) out.insert(c.callee_proc);
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        collectCallsOf(*i.then_block, out);
        if (i.else_block) collectCallsOf(*i.else_block, out);
        break;
      }
      case StmtKind::For:
        collectCallsOf(*static_cast<const ForStmt&>(*s).body, out);
        break;
      case StmtKind::Block:
        collectCallsOf(static_cast<const BlockStmt&>(*s), out);
        break;
      default:
        break;
    }
  }
}

}  // namespace

bool analyze(Program& program, DiagEngine& diags) {
  Sema sema(program, diags);
  return sema.run();
}

std::vector<ProcDecl*> bottomUpProcOrder(Program& program) {
  // Topological sort with callees first (call graph is acyclic by Sema).
  std::vector<ProcDecl*> order;
  std::set<const ProcDecl*> done;
  // Simple repeated passes (procedure counts are small).
  while (order.size() < program.procs.size()) {
    bool progressed = false;
    for (auto& p : program.procs) {
      if (done.count(p.get())) continue;
      std::set<const ProcDecl*> callees;
      collectCallsOf(*p->body, callees);
      bool ready = true;
      for (const ProcDecl* c : callees) {
        if (c != p.get() && !done.count(c)) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(p.get());
        done.insert(p.get());
        progressed = true;
      }
    }
    if (!progressed) break;  // defensive: cycle (should be rejected by Sema)
  }
  return order;
}

}  // namespace padfa
