// Hand-written lexer for MF.
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.h"
#include "support/diagnostics.h"

namespace padfa {

class Lexer {
 public:
  Lexer(std::string_view source, DiagEngine& diags);

  /// Tokenize the whole buffer; the last token is always Eof.
  std::vector<Token> run();

 private:
  Token next();
  char peek(size_t ahead = 0) const;
  char advance();
  bool match(char c);
  SourceLoc here() const { return {line_, col_}; }

  std::string_view src_;
  DiagEngine& diags_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t col_ = 1;
};

}  // namespace padfa
