#include "lang/parser.h"

#include "lang/lexer.h"

namespace padfa {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagEngine& diags)
      : toks_(std::move(tokens)), diags_(diags) {
    program_ = std::make_unique<Program>();
  }

  std::unique_ptr<Program> run() {
    while (!at(Tok::Eof)) {
      if (at(Tok::KwProc)) {
        auto p = parseProc();
        if (!p) return nullptr;
        program_->procs.push_back(std::move(p));
      } else {
        error("expected 'proc' at top level");
        return nullptr;
      }
    }
    if (diags_.hasErrors()) return nullptr;
    return std::move(program_);
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok k) const { return cur().kind == k; }
  Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    take();
    return true;
  }
  bool expect(Tok k) {
    if (accept(k)) return true;
    error(std::string("expected ") + std::string(tokName(k)) + ", found " +
          std::string(tokName(cur().kind)));
    return false;
  }
  void error(std::string msg) { diags_.error(cur().loc, std::move(msg)); }

  Symbol intern(const std::string& s) { return program_->interner.intern(s); }

  ProcPtr parseProc() {
    expect(Tok::KwProc);
    if (!at(Tok::Ident)) {
      error("expected procedure name");
      return nullptr;
    }
    auto proc = std::make_unique<ProcDecl>();
    proc->loc = cur().loc;
    proc->name = intern(take().text);
    if (!expect(Tok::LParen)) return nullptr;
    if (!at(Tok::RParen)) {
      do {
        auto p = parseVarDecl(/*is_param=*/true);
        if (!p) return nullptr;
        proc->params.push_back(std::move(p));
      } while (accept(Tok::Comma));
    }
    if (!expect(Tok::RParen)) return nullptr;
    proc->body = parseBlock();
    if (!proc->body) return nullptr;
    return proc;
  }

  // Parses "int x" / "real a[n, m]" (+ "= init" and ";" handled by caller
  // for locals).
  VarDeclPtr parseVarDecl(bool is_param) {
    auto d = std::make_unique<VarDecl>();
    d->loc = cur().loc;
    d->is_param = is_param;
    if (accept(Tok::KwInt)) {
      d->elem_type = Type::Int;
    } else if (accept(Tok::KwReal)) {
      d->elem_type = Type::Real;
    } else {
      error("expected type ('int' or 'real')");
      return nullptr;
    }
    if (!at(Tok::Ident)) {
      error("expected variable name");
      return nullptr;
    }
    d->name = intern(take().text);
    if (accept(Tok::LBracket)) {
      do {
        auto e = parseExpr();
        if (!e) return nullptr;
        d->dims.push_back(std::move(e));
      } while (accept(Tok::Comma));
      if (!expect(Tok::RBracket)) return nullptr;
    }
    return d;
  }

  BlockPtr parseBlock() {
    if (!expect(Tok::LBrace)) return nullptr;
    auto block = std::make_unique<BlockStmt>();
    block->loc = cur().loc;
    while (!at(Tok::RBrace) && !at(Tok::Eof)) {
      if (at(Tok::KwInt) || at(Tok::KwReal)) {
        auto d = parseVarDecl(/*is_param=*/false);
        if (!d) return nullptr;
        if (accept(Tok::Assign)) {
          d->init = parseExpr();
          if (!d->init) return nullptr;
        }
        if (!expect(Tok::Semi)) return nullptr;
        block->decls.push_back(std::move(d));
      } else {
        auto s = parseStmt();
        if (!s) return nullptr;
        block->stmts.push_back(std::move(s));
      }
    }
    if (!expect(Tok::RBrace)) return nullptr;
    return block;
  }

  StmtPtr parseStmt() {
    if (at(Tok::KwIf)) return parseIf();
    if (at(Tok::KwFor)) return parseFor();
    if (at(Tok::KwReturn)) {
      auto s = std::make_unique<ReturnStmt>();
      s->loc = cur().loc;
      take();
      if (!expect(Tok::Semi)) return nullptr;
      return s;
    }
    if (at(Tok::Ident)) return parseAssignOrCall();
    error(std::string("expected statement, found ") +
          std::string(tokName(cur().kind)));
    return nullptr;
  }

  StmtPtr parseIf() {
    auto s = std::make_unique<IfStmt>();
    s->loc = cur().loc;
    expect(Tok::KwIf);
    if (!expect(Tok::LParen)) return nullptr;
    s->cond = parseExpr();
    if (!s->cond) return nullptr;
    if (!expect(Tok::RParen)) return nullptr;
    s->then_block = parseBlock();
    if (!s->then_block) return nullptr;
    if (accept(Tok::KwElse)) {
      if (at(Tok::KwIf)) {
        // else-if chains become a nested block holding the if.
        auto nested = std::make_unique<BlockStmt>();
        nested->loc = cur().loc;
        auto inner = parseIf();
        if (!inner) return nullptr;
        nested->stmts.push_back(std::move(inner));
        s->else_block = std::move(nested);
      } else {
        s->else_block = parseBlock();
        if (!s->else_block) return nullptr;
      }
    }
    return s;
  }

  StmtPtr parseFor() {
    auto s = std::make_unique<ForStmt>();
    s->loc = cur().loc;
    expect(Tok::KwFor);
    if (!at(Tok::Ident)) {
      error("expected loop index name");
      return nullptr;
    }
    s->index_name = intern(take().text);
    if (!expect(Tok::Assign)) return nullptr;
    s->lower = parseExpr();
    if (!s->lower) return nullptr;
    if (!expect(Tok::KwTo)) return nullptr;
    s->upper = parseExpr();
    if (!s->upper) return nullptr;
    if (accept(Tok::KwStep)) {
      s->step = parseExpr();
      if (!s->step) return nullptr;
    }
    s->body = parseBlock();
    if (!s->body) return nullptr;
    return s;
  }

  StmtPtr parseAssignOrCall() {
    SourceLoc loc = cur().loc;
    std::string name = take().text;
    if (at(Tok::LParen)) {
      auto call = std::make_unique<CallStmt>();
      call->loc = loc;
      call->callee = intern(name);
      take();  // (
      if (!at(Tok::RParen)) {
        do {
          auto e = parseExpr();
          if (!e) return nullptr;
          call->args.push_back(std::move(e));
        } while (accept(Tok::Comma));
      }
      if (!expect(Tok::RParen)) return nullptr;
      if (!expect(Tok::Semi)) return nullptr;
      return call;
    }
    // Assignment: scalar or array element.
    auto assign = std::make_unique<AssignStmt>();
    assign->loc = loc;
    if (at(Tok::LBracket)) {
      auto ref = std::make_unique<ArrayRefExpr>(intern(name));
      ref->loc = loc;
      take();  // [
      do {
        auto e = parseExpr();
        if (!e) return nullptr;
        ref->indices.push_back(std::move(e));
      } while (accept(Tok::Comma));
      if (!expect(Tok::RBracket)) return nullptr;
      assign->target = std::move(ref);
    } else {
      auto ref = std::make_unique<VarRefExpr>(intern(name));
      ref->loc = loc;
      assign->target = std::move(ref);
    }
    if (!expect(Tok::Assign)) return nullptr;
    assign->value = parseExpr();
    if (!assign->value) return nullptr;
    if (!expect(Tok::Semi)) return nullptr;
    return assign;
  }

  // ---- expressions ----

  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    auto lhs = parseAnd();
    if (!lhs) return nullptr;
    while (at(Tok::PipePipe)) {
      SourceLoc loc = take().loc;
      auto rhs = parseAnd();
      if (!rhs) return nullptr;
      auto e = std::make_unique<BinaryExpr>(BinOp::Or, std::move(lhs),
                                            std::move(rhs));
      e->loc = loc;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parseAnd() {
    auto lhs = parseCmp();
    if (!lhs) return nullptr;
    while (at(Tok::AmpAmp)) {
      SourceLoc loc = take().loc;
      auto rhs = parseCmp();
      if (!rhs) return nullptr;
      auto e = std::make_unique<BinaryExpr>(BinOp::And, std::move(lhs),
                                            std::move(rhs));
      e->loc = loc;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parseCmp() {
    auto lhs = parseAdd();
    if (!lhs) return nullptr;
    BinOp op;
    switch (cur().kind) {
      case Tok::EqEq: op = BinOp::Eq; break;
      case Tok::NotEq: op = BinOp::Ne; break;
      case Tok::Lt: op = BinOp::Lt; break;
      case Tok::Le: op = BinOp::Le; break;
      case Tok::Gt: op = BinOp::Gt; break;
      case Tok::Ge: op = BinOp::Ge; break;
      default: return lhs;
    }
    SourceLoc loc = take().loc;
    auto rhs = parseAdd();
    if (!rhs) return nullptr;
    auto e =
        std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    e->loc = loc;
    return e;
  }

  ExprPtr parseAdd() {
    auto lhs = parseMul();
    if (!lhs) return nullptr;
    while (at(Tok::Plus) || at(Tok::Minus)) {
      BinOp op = at(Tok::Plus) ? BinOp::Add : BinOp::Sub;
      SourceLoc loc = take().loc;
      auto rhs = parseMul();
      if (!rhs) return nullptr;
      auto e =
          std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
      e->loc = loc;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parseMul() {
    auto lhs = parseUnary();
    if (!lhs) return nullptr;
    while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
      BinOp op = at(Tok::Star)    ? BinOp::Mul
                 : at(Tok::Slash) ? BinOp::Div
                                  : BinOp::Rem;
      SourceLoc loc = take().loc;
      auto rhs = parseUnary();
      if (!rhs) return nullptr;
      auto e =
          std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
      e->loc = loc;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parseUnary() {
    if (at(Tok::Minus) || at(Tok::Bang)) {
      UnOp op = at(Tok::Minus) ? UnOp::Neg : UnOp::Not;
      SourceLoc loc = take().loc;
      auto operand = parseUnary();
      if (!operand) return nullptr;
      auto e = std::make_unique<UnaryExpr>(op, std::move(operand));
      e->loc = loc;
      return e;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    SourceLoc loc = cur().loc;
    if (at(Tok::IntLit)) {
      auto e = std::make_unique<IntLitExpr>(take().int_value);
      e->loc = loc;
      return e;
    }
    if (at(Tok::RealLit)) {
      auto e = std::make_unique<RealLitExpr>(take().real_value);
      e->loc = loc;
      return e;
    }
    if (accept(Tok::LParen)) {
      auto e = parseExpr();
      if (!e) return nullptr;
      if (!expect(Tok::RParen)) return nullptr;
      return e;
    }
    if (at(Tok::Ident)) {
      std::string name = take().text;
      if (at(Tok::LParen)) {
        // Intrinsic function call.
        Intrinsic fn;
        if (name == "min") fn = Intrinsic::Min;
        else if (name == "max") fn = Intrinsic::Max;
        else if (name == "abs") fn = Intrinsic::Abs;
        else if (name == "sqrt") fn = Intrinsic::Sqrt;
        else if (name == "noise") fn = Intrinsic::Noise;
        else if (name == "inoise") fn = Intrinsic::INoise;
        else {
          diags_.error(loc, "unknown function '" + name +
                                "' in expression (procedures may only be "
                                "invoked as call statements)");
          return nullptr;
        }
        auto e = std::make_unique<IntrinsicExpr>(fn);
        e->loc = loc;
        take();  // (
        if (!at(Tok::RParen)) {
          do {
            auto a = parseExpr();
            if (!a) return nullptr;
            e->args.push_back(std::move(a));
          } while (accept(Tok::Comma));
        }
        if (!expect(Tok::RParen)) return nullptr;
        return e;
      }
      if (at(Tok::LBracket)) {
        auto e = std::make_unique<ArrayRefExpr>(intern(name));
        e->loc = loc;
        take();  // [
        do {
          auto idx = parseExpr();
          if (!idx) return nullptr;
          e->indices.push_back(std::move(idx));
        } while (accept(Tok::Comma));
        if (!expect(Tok::RBracket)) return nullptr;
        return e;
      }
      auto e = std::make_unique<VarRefExpr>(intern(name));
      e->loc = loc;
      return e;
    }
    error(std::string("expected expression, found ") +
          std::string(tokName(cur().kind)));
    return nullptr;
  }

  std::vector<Token> toks_;
  DiagEngine& diags_;
  size_t pos_ = 0;
  std::unique_ptr<Program> program_;
};

}  // namespace

std::unique_ptr<Program> parseProgram(std::string_view source,
                                      DiagEngine& diags) {
  Lexer lexer(source, diags);
  auto tokens = lexer.run();
  if (diags.hasErrors()) return nullptr;
  Parser parser(std::move(tokens), diags);
  return parser.run();
}

}  // namespace padfa
