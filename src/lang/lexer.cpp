#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace padfa {

std::string_view tokName(Tok t) {
  switch (t) {
    case Tok::Eof: return "end of input";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::RealLit: return "real literal";
    case Tok::KwProc: return "'proc'";
    case Tok::KwInt: return "'int'";
    case Tok::KwReal: return "'real'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwFor: return "'for'";
    case Tok::KwTo: return "'to'";
    case Tok::KwStep: return "'step'";
    case Tok::KwReturn: return "'return'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Bang: return "'!'";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string_view, Tok> kKeywords = {
    {"proc", Tok::KwProc}, {"int", Tok::KwInt},     {"real", Tok::KwReal},
    {"if", Tok::KwIf},     {"else", Tok::KwElse},   {"for", Tok::KwFor},
    {"to", Tok::KwTo},     {"step", Tok::KwStep},   {"return", Tok::KwReturn},
};
}  // namespace

Lexer::Lexer(std::string_view source, DiagEngine& diags)
    : src_(source), diags_(diags) {}

char Lexer::peek(size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char c) {
  if (peek() != c) return false;
  advance();
  return true;
}

std::vector<Token> Lexer::run() {
  std::vector<Token> out;
  while (true) {
    Token t = next();
    bool eof = t.kind == Tok::Eof;
    out.push_back(std::move(t));
    if (eof) break;
  }
  return out;
}

Token Lexer::next() {
  // Skip whitespace and comments ("//" to end of line, "#" to end of line).
  while (pos_ < src_.size()) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (pos_ < src_.size() && peek() != '\n') advance();
    } else if (c == '#') {
      while (pos_ < src_.size() && peek() != '\n') advance();
    } else {
      break;
    }
  }
  Token t;
  t.loc = here();
  if (pos_ >= src_.size()) {
    t.kind = Tok::Eof;
    return t;
  }
  char c = advance();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string word(1, c);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      word += advance();
    auto it = kKeywords.find(word);
    if (it != kKeywords.end()) {
      t.kind = it->second;
    } else {
      t.kind = Tok::Ident;
      t.text = std::move(word);
    }
    return t;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string num(1, c);
    while (std::isdigit(static_cast<unsigned char>(peek()))) num += advance();
    bool is_real = false;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_real = true;
      num += advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) num += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      size_t save = pos_;
      std::string exp(1, advance());
      if (peek() == '+' || peek() == '-') exp += advance();
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        is_real = true;
        while (std::isdigit(static_cast<unsigned char>(peek())))
          exp += advance();
        num += exp;
      } else {
        pos_ = save;  // not an exponent; leave 'e' for the next token
      }
    }
    if (is_real) {
      t.kind = Tok::RealLit;
      t.real_value = std::strtod(num.c_str(), nullptr);
    } else {
      t.kind = Tok::IntLit;
      t.int_value = std::strtoll(num.c_str(), nullptr, 10);
    }
    return t;
  }
  switch (c) {
    case '(': t.kind = Tok::LParen; return t;
    case ')': t.kind = Tok::RParen; return t;
    case '{': t.kind = Tok::LBrace; return t;
    case '}': t.kind = Tok::RBrace; return t;
    case '[': t.kind = Tok::LBracket; return t;
    case ']': t.kind = Tok::RBracket; return t;
    case ',': t.kind = Tok::Comma; return t;
    case ';': t.kind = Tok::Semi; return t;
    case '+': t.kind = Tok::Plus; return t;
    case '-': t.kind = Tok::Minus; return t;
    case '*': t.kind = Tok::Star; return t;
    case '/': t.kind = Tok::Slash; return t;
    case '%': t.kind = Tok::Percent; return t;
    case '=': t.kind = match('=') ? Tok::EqEq : Tok::Assign; return t;
    case '!': t.kind = match('=') ? Tok::NotEq : Tok::Bang; return t;
    case '<': t.kind = match('=') ? Tok::Le : Tok::Lt; return t;
    case '>': t.kind = match('=') ? Tok::Ge : Tok::Gt; return t;
    case '&':
      if (match('&')) {
        t.kind = Tok::AmpAmp;
        return t;
      }
      break;
    case '|':
      if (match('|')) {
        t.kind = Tok::PipePipe;
        return t;
      }
      break;
    default: break;
  }
  diags_.error(t.loc, std::string("unexpected character '") + c + "'");
  t.kind = Tok::Eof;
  return t;
}

}  // namespace padfa
