#include "lang/ast.h"

namespace padfa {

std::string_view typeName(Type t) {
  return t == Type::Int ? "int" : "real";
}

bool isComparison(BinOp op) {
  switch (op) {
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      return true;
    default:
      return false;
  }
}

bool isLogical(BinOp op) { return op == BinOp::And || op == BinOp::Or; }

std::string_view binOpSpelling(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Rem: return "%";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
  }
  return "?";
}

ProcDecl* Program::findProc(std::string_view name) {
  for (auto& p : procs)
    if (interner.str(p->name) == name) return p.get();
  return nullptr;
}

const ProcDecl* Program::findProc(std::string_view name) const {
  for (const auto& p : procs)
    if (interner.str(p->name) == name) return p.get();
  return nullptr;
}

namespace {

std::string_view intrinsicName(Intrinsic fn) {
  switch (fn) {
    case Intrinsic::Min: return "min";
    case Intrinsic::Max: return "max";
    case Intrinsic::Abs: return "abs";
    case Intrinsic::Sqrt: return "sqrt";
    case Intrinsic::Noise: return "noise";
    case Intrinsic::INoise: return "inoise";
  }
  return "?";
}

void render(const Expr& e, const Interner& in, std::string& out) {
  switch (e.kind) {
    case ExprKind::IntLit:
      out += std::to_string(static_cast<const IntLitExpr&>(e).value);
      break;
    case ExprKind::RealLit: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%g", static_cast<const RealLitExpr&>(e).value);
      out += buf;
      break;
    }
    case ExprKind::VarRef:
      out += in.str(static_cast<const VarRefExpr&>(e).name);
      break;
    case ExprKind::ArrayRef: {
      const auto& a = static_cast<const ArrayRefExpr&>(e);
      out += in.str(a.name);
      out += '[';
      for (size_t i = 0; i < a.indices.size(); ++i) {
        if (i) out += ", ";
        render(*a.indices[i], in, out);
      }
      out += ']';
      break;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      out += (u.op == UnOp::Neg) ? "-" : "!";
      out += '(';
      render(*u.operand, in, out);
      out += ')';
      break;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      out += '(';
      render(*b.lhs, in, out);
      out += ' ';
      out += binOpSpelling(b.op);
      out += ' ';
      render(*b.rhs, in, out);
      out += ')';
      break;
    }
    case ExprKind::Intrinsic: {
      const auto& c = static_cast<const IntrinsicExpr&>(e);
      out += intrinsicName(c.fn);
      out += '(';
      for (size_t i = 0; i < c.args.size(); ++i) {
        if (i) out += ", ";
        render(*c.args[i], in, out);
      }
      out += ')';
      break;
    }
  }
}

}  // namespace

std::string exprToString(const Expr& e, const Interner& interner) {
  std::string out;
  render(e, interner, out);
  return out;
}

ExprPtr cloneExprSubst(
    const Expr& e,
    const std::function<const Expr*(const VarDecl*)>& subst) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      auto c = std::make_unique<IntLitExpr>(
          static_cast<const IntLitExpr&>(e).value);
      c->loc = e.loc;
      c->type = e.type;
      return c;
    }
    case ExprKind::RealLit: {
      auto c = std::make_unique<RealLitExpr>(
          static_cast<const RealLitExpr&>(e).value);
      c->loc = e.loc;
      c->type = e.type;
      return c;
    }
    case ExprKind::VarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      if (subst && v.decl) {
        if (const Expr* repl = subst(v.decl)) return cloneExprSubst(*repl, subst);
      }
      auto c = std::make_unique<VarRefExpr>(v.name);
      c->decl = v.decl;
      c->loc = e.loc;
      c->type = e.type;
      return c;
    }
    case ExprKind::ArrayRef: {
      const auto& a = static_cast<const ArrayRefExpr&>(e);
      auto c = std::make_unique<ArrayRefExpr>(a.name);
      c->decl = a.decl;
      c->loc = e.loc;
      c->type = e.type;
      for (const auto& idx : a.indices)
        c->indices.push_back(cloneExprSubst(*idx, subst));
      return c;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      auto c = std::make_unique<UnaryExpr>(u.op,
                                           cloneExprSubst(*u.operand, subst));
      c->loc = e.loc;
      c->type = e.type;
      return c;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      auto c = std::make_unique<BinaryExpr>(b.op,
                                            cloneExprSubst(*b.lhs, subst),
                                            cloneExprSubst(*b.rhs, subst));
      c->loc = e.loc;
      c->type = e.type;
      return c;
    }
    case ExprKind::Intrinsic: {
      const auto& i = static_cast<const IntrinsicExpr&>(e);
      auto c = std::make_unique<IntrinsicExpr>(i.fn);
      c->loc = e.loc;
      c->type = e.type;
      for (const auto& a : i.args)
        c->args.push_back(cloneExprSubst(*a, subst));
      return c;
    }
  }
  return nullptr;
}

ExprPtr cloneExpr(const Expr& e) { return cloneExprSubst(e, nullptr); }

void collectVars(const Expr& e, std::vector<const VarDecl*>& out) {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::RealLit:
      break;
    case ExprKind::VarRef:
      if (const VarDecl* d = static_cast<const VarRefExpr&>(e).decl)
        out.push_back(d);
      break;
    case ExprKind::ArrayRef: {
      const auto& a = static_cast<const ArrayRefExpr&>(e);
      if (a.decl) out.push_back(a.decl);
      for (const auto& idx : a.indices) collectVars(*idx, out);
      break;
    }
    case ExprKind::Unary:
      collectVars(*static_cast<const UnaryExpr&>(e).operand, out);
      break;
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      collectVars(*b.lhs, out);
      collectVars(*b.rhs, out);
      break;
    }
    case ExprKind::Intrinsic:
      for (const auto& a : static_cast<const IntrinsicExpr&>(e).args)
        collectVars(*a, out);
      break;
  }
}

}  // namespace padfa
