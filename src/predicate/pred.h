// Predicates attached to data-flow values (Section 4 of the paper).
//
// A predicate is an arbitrary boolean combination of comparison atoms over
// program expressions. Unlike prior guarded-analysis work, atoms are NOT
// restricted to a compiler-understood domain: any run-time-evaluable
// expression can appear, which is what enables run-time test derivation.
// Atoms that happen to be affine in integer scalars additionally support
// implication reasoning (and predicate embedding) through the presburger
// domain.
//
// Representation: immutable shared DAG in negation normal form. Atoms are
// canonicalized to {Le, Eq} with a negation flag, so complements are
// detected structurally (a < b  ==  !(b <= a)).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "presburger/system.h"
#include "symbolic/vartable.h"

namespace padfa {

enum class PredKind : uint8_t { True, False, Atom, And, Or };
enum class AtomOp : uint8_t { Le, Eq };

class Pred;

struct PredNode {
  PredKind kind;
  // Atom payload (kind == Atom).
  AtomOp op = AtomOp::Le;
  bool negated = false;
  ExprPtr lhs, rhs;  // owned clones
  // Children (kind == And / Or).
  std::vector<Pred> children;
  // Canonical key: structural identity (semantic identity for atoms thanks
  // to canonicalization).
  std::string key;
};

/// Value-semantics handle to an immutable predicate DAG node.
class Pred {
 public:
  /// Default-constructed Pred is `true`.
  Pred();

  static Pred always();
  static Pred never();

  /// Build a predicate from an int-typed MF condition expression
  /// (comparisons, &&, ||, !, or any int expression used as a flag).
  /// The expression is cloned; `interner` is used for canonical keys.
  static Pred fromCondition(const Expr& cond, const Interner& interner);

  /// Atom: lhs op rhs (possibly negated). Clones both sides.
  static Pred atom(AtomOp op, const Expr& lhs, const Expr& rhs, bool negated,
                   const Interner& interner);

  /// A predicate asserting `e >= 0` for an affine LinExpr, rendered
  /// against `vt` (used by predicate extraction). `decls` must be able to
  /// render every variable of `e` back to an expression.
  static Pred fromAffineGE0(const pb::LinExpr& e, const VarTable& vt,
                            const Interner& interner);

  bool isTrue() const { return node_->kind == PredKind::True; }
  bool isFalse() const { return node_->kind == PredKind::False; }
  PredKind kind() const { return node_->kind; }
  const PredNode& node() const { return *node_; }
  const std::string& key() const { return node_->key; }

  friend Pred operator&&(const Pred& a, const Pred& b);
  friend Pred operator||(const Pred& a, const Pred& b);
  Pred operator!() const;

  bool operator==(const Pred& o) const { return key() == o.key(); }

  /// Conservative implication test: returns true only if `*this => q` is
  /// proven (structurally or through the affine domain).
  bool implies(const Pred& q, VarTable& vt) const;

  /// Semantics-preserving cleanup using the affine domain: inside an Or,
  /// drop children implied by another child (keep the weakest); inside an
  /// And, drop children implying another child (keep the strongest).
  /// Applied recursively. Used to tidy derived run-time tests.
  Pred simplify(VarTable& vt) const;

  /// The affine conjunction entailed by this predicate: a System S such
  /// that (*this) => S. Atoms that are not affine contribute nothing.
  /// Used for predicate embedding.
  pb::System affineUpperBound(VarTable& vt) const;

  /// Does the predicate mention any of the given variables?
  bool mentionsAnyOf(const std::vector<const VarDecl*>& vars) const;

  /// Replace every atom that references one of `vars` with `true`
  /// (toTrue, weakening: result is implied by this predicate) or `false`
  /// (strengthening: result implies this predicate). Sound because the
  /// NNF tree is monotone in its atoms. Used to "kill" predicates whose
  /// scalars are overwritten before the point the summary describes.
  Pred weakenAtoms(const std::vector<const VarDecl*>& vars,
                   bool toTrue) const;
  void collectReferencedVars(std::vector<const VarDecl*>& out) const;

  /// Rebuild with variable substitution (formal -> actual translation
  /// across procedure boundaries). Atoms whose variables are all either
  /// substituted or untouched survive; there is no weakening here — use
  /// mentionsAnyOf + explicit weakening for scope kills.
  Pred substitute(const std::function<const Expr*(const VarDecl*)>& subst,
                  const Interner& interner) const;

  /// Evaluate against a scalar environment (run-time test execution).
  /// `eval` must return the numeric value of a scalar expression.
  bool evaluate(const std::function<double(const Expr&)>& eval) const;

  /// Number of atom evaluations an evaluate() call may perform — the
  /// "cost" of the run-time test the paper argues is low.
  size_t atomCount() const;

  std::string str(const Interner& interner) const;

 private:
  explicit Pred(std::shared_ptr<const PredNode> n) : node_(std::move(n)) {}
  static Pred makeCombo(PredKind kind, std::vector<Pred> children);
  // Uncached bodies behind the memoized implies()/simplify() entry points.
  bool impliesImpl(const Pred& q, VarTable& vt) const;
  Pred simplifyImpl(VarTable& vt) const;

  std::shared_ptr<const PredNode> node_;
};

/// Affine GE0-form constraints entailed by a single atom, if any.
/// For op Le (lhs <= rhs): rhs - lhs >= 0; negated: lhs - rhs - 1 >= 0.
/// For op Eq: rhs - lhs == 0; negated Eq is disjunctive -> nullopt.
std::optional<pb::Constraint> atomConstraint(const PredNode& atom,
                                             VarTable& vt);

/// The structural key of an expression, as used inside Pred keys:
/// variables are qualified with (symbol id, local id, program-wide uid),
/// so equal keys mean structurally identical expressions over identical
/// declarations. Exposed for cache keys (e.g. the translated-summary
/// cache keys call-site actuals by this).
std::string exprStructuralKey(const Expr& e);

}  // namespace padfa
