#include "predicate/pred.h"

#include <algorithm>
#include <unordered_map>

#include "support/budget.h"
#include "support/perf_stats.h"
#include "symbolic/affine.h"

namespace padfa {

namespace {

// Structural key for an expression. Variables are qualified with their
// interner symbol id, local id, and program-wide uid so distinct decls
// with equal spelling never collide — not even across procedures (where
// local ids restart from 0). Collision freedom is what lets the memo
// tables below treat key equality as full structural identity.
void keyOf(const Expr& e, std::string& out) {
  switch (e.kind) {
    case ExprKind::IntLit:
      out += 'i';
      out += std::to_string(static_cast<const IntLitExpr&>(e).value);
      break;
    case ExprKind::RealLit: {
      char buf[40];
      snprintf(buf, sizeof(buf), "r%a", static_cast<const RealLitExpr&>(e).value);
      out += buf;
      break;
    }
    case ExprKind::VarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      out += 'v';
      out += std::to_string(v.name.id);
      out += '.';
      if (v.decl) {
        out += std::to_string(v.decl->local_id);
        out += '#';
        out += std::to_string(v.decl->uid);
      } else {
        out += '?';
      }
      break;
    }
    case ExprKind::ArrayRef: {
      const auto& a = static_cast<const ArrayRefExpr&>(e);
      out += 'a';
      out += std::to_string(a.name.id);
      if (a.decl) {
        out += '#';
        out += std::to_string(a.decl->uid);
      }
      out += '[';
      for (const auto& idx : a.indices) {
        keyOf(*idx, out);
        out += ',';
      }
      out += ']';
      break;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      out += (u.op == UnOp::Neg) ? "neg(" : "not(";
      keyOf(*u.operand, out);
      out += ')';
      break;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      out += 'b';
      out += std::to_string(static_cast<int>(b.op));
      out += '(';
      keyOf(*b.lhs, out);
      out += ',';
      keyOf(*b.rhs, out);
      out += ')';
      break;
    }
    case ExprKind::Intrinsic: {
      const auto& c = static_cast<const IntrinsicExpr&>(e);
      out += 'f';
      out += std::to_string(static_cast<int>(c.fn));
      out += '(';
      for (const auto& a : c.args) {
        keyOf(*a, out);
        out += ',';
      }
      out += ')';
      break;
    }
  }
}

std::string exprKey(const Expr& e) {
  std::string out;
  keyOf(e, out);
  return out;
}

std::shared_ptr<const PredNode> makeLeaf(PredKind kind) {
  auto n = std::make_shared<PredNode>();
  n->kind = kind;
  n->key = (kind == PredKind::True) ? "T" : "F";
  return n;
}

const std::shared_ptr<const PredNode>& trueNode() {
  static const std::shared_ptr<const PredNode> n = makeLeaf(PredKind::True);
  return n;
}
const std::shared_ptr<const PredNode>& falseNode() {
  static const std::shared_ptr<const PredNode> n = makeLeaf(PredKind::False);
  return n;
}

// Key of an atom with its negation flag flipped.
std::string flipAtomKey(const std::string& key) {
  // Atom keys look like "A!..." (negated) or "A..." (plain).
  if (key.size() > 1 && key[1] == '!') return "A" + key.substr(2);
  return "A!" + key.substr(1);
}

// Per-(thread, VarTable) memo tables for implies()/simplify(). Thread-
// local because every analysis runs single-threaded against its own
// VarTable; keyed by the table's epoch so a new analysis on this thread
// starts from an empty memo (address reuse cannot resurrect stale
// entries). Determinism argument ("id transparency"): a hit can only
// occur after a structurally identical miss already ran on this VarTable,
// and that miss performed every vt.idFor() side effect of the uncached
// computation on the very same decls — so replays are idempotent and
// skipping them cannot shift VarId assignment order.
struct PredMemo {
  uint64_t epoch = 0;
  std::unordered_map<std::string, bool> implies;
  std::unordered_map<std::string, Pred> simplify;
};

PredMemo* usableMemo(const VarTable& vt) {
  if (!cachesEnabled()) return nullptr;
  // A governed budget must observe every charge point (see perf_stats.h).
  if (AnalysisBudget* b = AnalysisBudget::current())
    if (b->governed()) return nullptr;
  thread_local PredMemo memo;
  if (memo.epoch != vt.epoch()) {
    memo.epoch = vt.epoch();
    memo.implies.clear();
    memo.simplify.clear();
  }
  return &memo;
}

}  // namespace

std::string exprStructuralKey(const Expr& e) {
  std::string out;
  keyOf(e, out);
  return out;
}

Pred::Pred() : node_(trueNode()) {}
Pred Pred::always() { return Pred(trueNode()); }
Pred Pred::never() { return Pred(falseNode()); }

Pred Pred::atom(AtomOp op, const Expr& lhs, const Expr& rhs, bool negated,
                const Interner& interner) {
  (void)interner;
  // Constant-fold ground atoms.
  auto lk = tryConstInt(lhs);
  auto rk = tryConstInt(rhs);
  if (lk && rk) {
    bool val = (op == AtomOp::Le) ? (*lk <= *rk) : (*lk == *rk);
    if (negated) val = !val;
    return val ? always() : never();
  }
  auto n = std::make_shared<PredNode>();
  n->kind = PredKind::Atom;
  n->op = op;
  n->negated = negated;
  ExprPtr l = cloneExpr(lhs);
  ExprPtr r = cloneExpr(rhs);
  if (op == AtomOp::Eq) {
    // Eq is symmetric: canonicalize operand order by key.
    if (exprKey(*r) < exprKey(*l)) std::swap(l, r);
  }
  n->lhs = std::move(l);
  n->rhs = std::move(r);
  n->key = std::string("A") + (negated ? "!" : "") +
           (op == AtomOp::Le ? "le(" : "eq(") + exprKey(*n->lhs) + "," +
           exprKey(*n->rhs) + ")";
  return Pred(std::move(n));
}

Pred Pred::fromCondition(const Expr& cond, const Interner& interner) {
  if (auto k = tryConstInt(cond)) return *k != 0 ? always() : never();
  switch (cond.kind) {
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(cond);
      if (u.op == UnOp::Not) return !fromCondition(*u.operand, interner);
      break;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(cond);
      switch (b.op) {
        case BinOp::And:
          return fromCondition(*b.lhs, interner) &&
                 fromCondition(*b.rhs, interner);
        case BinOp::Or:
          return fromCondition(*b.lhs, interner) ||
                 fromCondition(*b.rhs, interner);
        case BinOp::Le:
          return atom(AtomOp::Le, *b.lhs, *b.rhs, false, interner);
        case BinOp::Lt:  // a < b  ==  !(b <= a)
          return atom(AtomOp::Le, *b.rhs, *b.lhs, true, interner);
        case BinOp::Ge:
          return atom(AtomOp::Le, *b.rhs, *b.lhs, false, interner);
        case BinOp::Gt:
          return atom(AtomOp::Le, *b.lhs, *b.rhs, true, interner);
        case BinOp::Eq:
          return atom(AtomOp::Eq, *b.lhs, *b.rhs, false, interner);
        case BinOp::Ne:
          return atom(AtomOp::Eq, *b.lhs, *b.rhs, true, interner);
        default:
          break;
      }
      break;
    }
    default:
      break;
  }
  // Fallback: any int expression used as a flag means `cond != 0`.
  IntLitExpr zero(0);
  zero.type = Type::Int;
  return atom(AtomOp::Eq, cond, zero, /*negated=*/true, interner);
}

std::optional<pb::Constraint> atomConstraint(const PredNode& a, VarTable& vt) {
  if (a.kind != PredKind::Atom) return std::nullopt;
  if (a.lhs->type != Type::Int || a.rhs->type != Type::Int)
    return std::nullopt;
  auto l = tryAffine(*a.lhs, vt);
  auto r = tryAffine(*a.rhs, vt);
  if (!l || !r) return std::nullopt;
  if (a.op == AtomOp::Le) {
    if (!a.negated) return pb::Constraint::ge0(*r - *l);  // r - l >= 0
    // !(l <= r)  ==  l - r - 1 >= 0
    pb::LinExpr e = *l - *r;
    e.setConstant(e.constant() - 1);
    return pb::Constraint::ge0(std::move(e));
  }
  if (!a.negated) return pb::Constraint::eq0(*r - *l);
  return std::nullopt;  // negated equality is disjunctive
}

Pred Pred::makeCombo(PredKind kind, std::vector<Pred> children) {
  const bool isAnd = kind == PredKind::And;
  // Flatten, drop identities, detect annihilators.
  std::vector<Pred> flat;
  for (auto& c : children) {
    if (isAnd ? c.isFalse() : c.isTrue()) return isAnd ? never() : always();
    if (isAnd ? c.isTrue() : c.isFalse()) continue;
    if (c.kind() == kind) {
      for (const auto& gc : c.node().children) flat.push_back(gc);
    } else {
      flat.push_back(std::move(c));
    }
  }
  // Dedupe by key; detect complementary atoms.
  std::sort(flat.begin(), flat.end(),
            [](const Pred& a, const Pred& b) { return a.key() < b.key(); });
  flat.erase(std::unique(flat.begin(), flat.end(),
                         [](const Pred& a, const Pred& b) {
                           return a.key() == b.key();
                         }),
             flat.end());
  for (const auto& c : flat) {
    if (c.kind() != PredKind::Atom) continue;
    std::string comp = flipAtomKey(c.key());
    for (const auto& d : flat) {
      if (d.key() == comp) return isAnd ? never() : always();
    }
  }
  if (flat.empty()) return isAnd ? always() : never();
  if (flat.size() == 1) return flat[0];
  auto n = std::make_shared<PredNode>();
  n->kind = kind;
  n->key = isAnd ? "(&" : "(|";
  for (const auto& c : flat) {
    n->key += c.key();
    n->key += ';';
  }
  n->key += ')';
  n->children = std::move(flat);
  return Pred(std::move(n));
}

Pred operator&&(const Pred& a, const Pred& b) {
  return Pred::makeCombo(PredKind::And, {a, b});
}

Pred operator||(const Pred& a, const Pred& b) {
  return Pred::makeCombo(PredKind::Or, {a, b});
}

Pred Pred::operator!() const {
  switch (node_->kind) {
    case PredKind::True: return never();
    case PredKind::False: return always();
    case PredKind::Atom: {
      auto n = std::make_shared<PredNode>();
      n->kind = PredKind::Atom;
      n->op = node_->op;
      n->negated = !node_->negated;
      n->lhs = cloneExpr(*node_->lhs);
      n->rhs = cloneExpr(*node_->rhs);
      n->key = flipAtomKey(node_->key);
      return Pred(std::move(n));
    }
    case PredKind::And:
    case PredKind::Or: {
      std::vector<Pred> negs;
      negs.reserve(node_->children.size());
      for (const auto& c : node_->children) negs.push_back(!c);
      return makeCombo(
          node_->kind == PredKind::And ? PredKind::Or : PredKind::And,
          std::move(negs));
    }
  }
  return always();
}

pb::System Pred::affineUpperBound(VarTable& vt) const {
  pb::System sys;
  switch (node_->kind) {
    case PredKind::True:
    case PredKind::Or:  // disjunctions entail nothing convex (conservative)
      break;
    case PredKind::False:
      // Entails anything; return an infeasible system.
      sys.addGE0(pb::LinExpr(-1));
      break;
    case PredKind::Atom:
      if (auto c = atomConstraint(*node_, vt)) sys.add(std::move(*c));
      break;
    case PredKind::And:
      for (const auto& c : node_->children) {
        pb::System child = c.affineUpperBound(vt);
        sys.conjoin(child);
      }
      break;
  }
  return sys;
}

bool Pred::implies(const Pred& q, VarTable& vt) const {
  // Constant answers never reach the memo (cheaper than the lookup).
  if (q.isTrue() || isFalse()) return true;
  if (key() == q.key()) return true;
  if (q.isFalse()) return false;
  PredMemo* memo = usableMemo(vt);
  if (!memo) return impliesImpl(q, vt);
  std::string ck;
  ck.reserve(key().size() + q.key().size() + 1);
  ck += key();
  ck += '>';
  ck += q.key();
  auto it = memo->implies.find(ck);
  CacheStats& stats = PerfStats::instance().implies;
  if (it != memo->implies.end()) {
    stats.hit();
    return it->second;
  }
  stats.miss();
  bool r = impliesImpl(q, vt);
  // Re-acquired map (not the saved iterator): the recursive impliesImpl
  // call memoizes its subqueries into the same table.
  memo->implies.emplace(std::move(ck), r);
  stats.insert();
  return r;
}

bool Pred::impliesImpl(const Pred& q, VarTable& vt) const {
  if (q.isTrue() || isFalse()) return true;
  if (key() == q.key()) return true;
  if (q.isFalse()) return false;

  if (q.kind() == PredKind::And) {
    for (const auto& c : q.node().children)
      if (!implies(c, vt)) return false;
    return true;
  }
  if (q.kind() == PredKind::Or) {
    for (const auto& c : q.node().children)
      if (implies(c, vt)) return true;
    // fall through to structural / affine checks below
  }

  // Structural: q appears among our conjuncts.
  if (node_->kind == PredKind::And) {
    for (const auto& c : node_->children)
      if (c.key() == q.key()) return true;
  }

  // Affine: this => S (affine upper bound); if S && !q is infeasible,
  // then this => q.
  if (q.kind() == PredKind::Atom) {
    pb::System sys = affineUpperBound(vt);
    const PredNode& qa = q.node();
    Pred qneg = !q;
    if (qa.op == AtomOp::Eq && !qa.negated) {
      // !q = (l != r): check both strict sides infeasible with sys.
      auto l = tryAffine(*qa.lhs, vt);
      auto r = tryAffine(*qa.rhs, vt);
      if (!l || !r) return false;
      pb::System s1 = sys;
      pb::LinExpr d = *r - *l;
      pb::LinExpr gt = d;
      gt.setConstant(gt.constant() - 1);  // d >= 1
      s1.addGE0(std::move(gt));
      pb::System s2 = sys;
      pb::LinExpr lt = d.negated();
      lt.setConstant(lt.constant() - 1);  // -d >= 1
      s2.addGE0(std::move(lt));
      return !s1.feasible() && !s2.feasible();
    }
    if (auto nc = atomConstraint(qneg.node(), vt)) {
      pb::System s = sys;
      s.add(std::move(*nc));
      return !s.feasible();
    }
  }
  return false;
}

bool Pred::mentionsAnyOf(const std::vector<const VarDecl*>& vars) const {
  std::vector<const VarDecl*> used;
  collectReferencedVars(used);
  for (const VarDecl* u : used)
    for (const VarDecl* v : vars)
      if (u == v) return true;
  return false;
}

Pred Pred::weakenAtoms(const std::vector<const VarDecl*>& vars,
                       bool toTrue) const {
  switch (node_->kind) {
    case PredKind::True:
    case PredKind::False:
      return *this;
    case PredKind::Atom: {
      std::vector<const VarDecl*> used;
      collectVars(*node_->lhs, used);
      collectVars(*node_->rhs, used);
      for (const VarDecl* u : used)
        for (const VarDecl* v : vars)
          if (u == v) return toTrue ? always() : never();
      return *this;
    }
    case PredKind::And:
    case PredKind::Or: {
      Pred acc =
          node_->kind == PredKind::And ? Pred::always() : Pred::never();
      for (const auto& c : node_->children) {
        Pred wc = c.weakenAtoms(vars, toTrue);
        acc = node_->kind == PredKind::And ? (acc && wc) : (acc || wc);
      }
      return acc;
    }
  }
  return *this;
}

void Pred::collectReferencedVars(std::vector<const VarDecl*>& out) const {
  switch (node_->kind) {
    case PredKind::True:
    case PredKind::False:
      break;
    case PredKind::Atom:
      collectVars(*node_->lhs, out);
      collectVars(*node_->rhs, out);
      break;
    case PredKind::And:
    case PredKind::Or:
      for (const auto& c : node_->children) c.collectReferencedVars(out);
      break;
  }
}

Pred Pred::substitute(
    const std::function<const Expr*(const VarDecl*)>& subst,
    const Interner& interner) const {
  switch (node_->kind) {
    case PredKind::True:
    case PredKind::False:
      return *this;
    case PredKind::Atom: {
      ExprPtr l = cloneExprSubst(*node_->lhs, subst);
      ExprPtr r = cloneExprSubst(*node_->rhs, subst);
      return atom(node_->op, *l, *r, node_->negated, interner);
    }
    case PredKind::And:
    case PredKind::Or: {
      Pred acc =
          node_->kind == PredKind::And ? Pred::always() : Pred::never();
      for (const auto& c : node_->children) {
        Pred sc = c.substitute(subst, interner);
        acc = node_->kind == PredKind::And ? (acc && sc) : (acc || sc);
      }
      return acc;
    }
  }
  return *this;
}

bool Pred::evaluate(const std::function<double(const Expr&)>& eval) const {
  switch (node_->kind) {
    case PredKind::True: return true;
    case PredKind::False: return false;
    case PredKind::Atom: {
      double l = eval(*node_->lhs);
      double r = eval(*node_->rhs);
      bool v = node_->op == AtomOp::Le ? (l <= r) : (l == r);
      return node_->negated ? !v : v;
    }
    case PredKind::And:
      for (const auto& c : node_->children)
        if (!c.evaluate(eval)) return false;
      return true;
    case PredKind::Or:
      for (const auto& c : node_->children)
        if (c.evaluate(eval)) return true;
      return false;
  }
  return false;
}

size_t Pred::atomCount() const {
  switch (node_->kind) {
    case PredKind::True:
    case PredKind::False:
      return 0;
    case PredKind::Atom:
      return 1;
    case PredKind::And:
    case PredKind::Or: {
      size_t n = 0;
      for (const auto& c : node_->children) n += c.atomCount();
      return n;
    }
  }
  return 0;
}

Pred Pred::simplify(VarTable& vt) const {
  if (node_->kind != PredKind::And && node_->kind != PredKind::Or)
    return *this;
  PredMemo* memo = usableMemo(vt);
  if (!memo) return simplifyImpl(vt);
  auto it = memo->simplify.find(key());
  CacheStats& stats = PerfStats::instance().simplify;
  if (it != memo->simplify.end()) {
    stats.hit();
    return it->second;
  }
  stats.miss();
  Pred r = simplifyImpl(vt);
  memo->simplify.emplace(key(), r);
  stats.insert();
  return r;
}

Pred Pred::simplifyImpl(VarTable& vt) const {
  const bool is_and = node_->kind == PredKind::And;
  std::vector<Pred> kids;
  kids.reserve(node_->children.size());
  for (const auto& c : node_->children) kids.push_back(c.simplify(vt));
  // In an Or: if a => b, a is redundant (b already covers it).
  // In an And: if a => b, b is redundant (a is at least as strong).
  std::vector<bool> dead(kids.size(), false);
  for (size_t i = 0; i < kids.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < kids.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (kids[i].implies(kids[j], vt)) {
        if (is_and)
          dead[j] = true;
        else
          dead[i] = true;
        if (dead[i]) break;
      }
    }
  }
  Pred acc = is_and ? always() : never();
  for (size_t i = 0; i < kids.size(); ++i) {
    if (dead[i]) continue;
    acc = is_and ? (acc && kids[i]) : (acc || kids[i]);
  }
  return acc;
}

std::string Pred::str(const Interner& interner) const {
  switch (node_->kind) {
    case PredKind::True: return "true";
    case PredKind::False: return "false";
    case PredKind::Atom: {
      std::string l = exprToString(*node_->lhs, interner);
      std::string r = exprToString(*node_->rhs, interner);
      if (node_->op == AtomOp::Le)
        return node_->negated ? (l + " > " + r) : (l + " <= " + r);
      return node_->negated ? (l + " != " + r) : (l + " == " + r);
    }
    case PredKind::And:
    case PredKind::Or: {
      std::string sep = node_->kind == PredKind::And ? " && " : " || ";
      std::string out = "(";
      for (size_t i = 0; i < node_->children.size(); ++i) {
        if (i) out += sep;
        out += node_->children[i].str(interner);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

Pred Pred::fromAffineGE0(const pb::LinExpr& e, const VarTable& vt,
                         const Interner& interner) {
  // Render sum(c_i * v_i) + k >= 0 as an MF expression tree "0 <= expr".
  // Every variable must map back to a program scalar decl.
  ExprPtr acc;
  auto addPiece = [&acc](ExprPtr piece) {
    if (!acc) {
      acc = std::move(piece);
    } else {
      auto b = std::make_unique<BinaryExpr>(BinOp::Add, std::move(acc),
                                            std::move(piece));
      b->type = Type::Int;
      acc = std::move(b);
    }
  };
  for (const auto& [v, c] : e.terms()) {
    const VarDecl* d = vt.declOf(v);
    if (!d) {
      // Cannot render synthetic variables; callers should have projected
      // them away. Produce the trivially-true predicate to stay sound on
      // the "necessary condition" side? No: this function promises the
      // exact predicate. Return `always()` would be wrong; use a dead
      // atom that always evaluates false-safe. We choose: give up ->
      // represent as `true` is unsound for extraction use. Hence assert
      // via never(): see header contract — callers must pre-project.
      return never();
    }
    auto ref = std::make_unique<VarRefExpr>(d->name);
    ref->decl = const_cast<VarDecl*>(d);
    ref->type = Type::Int;
    if (c == 1) {
      addPiece(std::move(ref));
    } else {
      auto lit = std::make_unique<IntLitExpr>(c);
      lit->type = Type::Int;
      auto mul = std::make_unique<BinaryExpr>(BinOp::Mul, std::move(lit),
                                              std::move(ref));
      mul->type = Type::Int;
      addPiece(std::move(mul));
    }
  }
  if (e.constant() != 0 || !acc) {
    auto lit = std::make_unique<IntLitExpr>(e.constant());
    lit->type = Type::Int;
    addPiece(std::move(lit));
  }
  IntLitExpr zero(0);
  zero.type = Type::Int;
  return atom(AtomOp::Le, zero, *acc, false, interner);
}

}  // namespace padfa
